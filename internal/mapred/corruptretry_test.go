package mapred

import (
	"errors"
	"testing"

	"repro/internal/corrupt"
	"repro/internal/simnet"
)

func corruptEngine(plan *corrupt.Plan) *Engine {
	c := testCluster()
	c.SetCorruptionPlan(plan)
	e := NewEngine(c)
	e.IntegrityChecks = true
	return e
}

// TestTransferAtCorruptResendConservesBytes pins the byte accounting of
// checksum re-sends: a payload that arrives corrupt crossed the fabric
// whole, so each re-send is recorded as real traffic, and the transfer
// succeeds once the advanced clock re-prices it past the window.
func TestTransferAtCorruptResendConservesBytes(t *testing.T) {
	plan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: 0.2, Rate: 1, Seed: 61},
	}}
	e := corruptEngine(plan)
	e.RetryBackoff = 0.05
	const bytes = 64 << 10
	flows := []simnet.Flow{{Src: 1, Dst: 0, Bytes: bytes}}
	before := e.cluster.Fabric().Counters().Total
	res, err := e.transferAt(flows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.corruptRetries == 0 {
		t.Fatal("a rate-1 window at the start caused no re-sends")
	}
	if res.corruptRetryBytes != int64(res.corruptRetries)*bytes {
		t.Fatalf("corruptRetryBytes = %d after %d re-sends of %d bytes", res.corruptRetryBytes, res.corruptRetries, bytes)
	}
	// Every re-send plus the clean final attempt crossed the fabric.
	moved := e.cluster.Fabric().Counters().Total - before
	if want := int64(res.corruptRetries+1) * bytes; moved != want {
		t.Fatalf("fabric recorded %d bytes, want %d", moved, want)
	}
	if res.retries != 0 || res.retryBytes != 0 {
		t.Fatalf("corrupt re-sends leaked into timeout-retry accounting: %+v", res)
	}
	clean := corruptEngine(nil)
	if res.elapsed <= clean.transfer(flows) {
		t.Fatalf("re-sends cost no time: %v", res.elapsed)
	}
}

// TestTransferAtCorruptBudgetExhausted drives the give-up path: inside
// a window no re-send can escape, the engine stops after
// corruptRetryCap re-sends with a typed corrupt transfer error, and the
// final abandoned attempt records nothing.
func TestTransferAtCorruptBudgetExhausted(t *testing.T) {
	plan := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: 1e9, Rate: 1, Seed: 62},
	}}
	e := corruptEngine(plan)
	e.RetryBackoff = 0.05
	const bytes = 64 << 10
	flows := []simnet.Flow{{Src: 1, Dst: 0, Bytes: bytes}}
	before := e.cluster.Fabric().Counters().Total
	res, err := e.transferAt(flows, 0)
	if err == nil {
		t.Fatal("transfer through an endless rate-1 window succeeded")
	}
	var te *simnet.TransferError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *simnet.TransferError", err)
	}
	if te.Kind != simnet.TransferCorrupt {
		t.Fatalf("TransferError.Kind = %q, want corrupt", te.Kind)
	}
	if te.Src != 1 || te.Dst != 0 {
		t.Fatalf("TransferError endpoints = %d->%d, want 1->0", te.Src, te.Dst)
	}
	if res.corruptRetries != corruptRetryCap {
		t.Fatalf("corruptRetries = %d, want the cap %d", res.corruptRetries, corruptRetryCap)
	}
	if moved := e.cluster.Fabric().Counters().Total - before; moved != int64(corruptRetryCap)*bytes {
		t.Fatalf("fabric recorded %d bytes; the abandoned final attempt must record nothing", moved)
	}
}

// TestTransferAtCorruptPathsOffWhenUnarmed pins the fast path both
// ways: windows with checks off are consumed silently (callers model
// the damage), and a plan with no windows leaves the plan-free pricing
// untouched even with checks on.
func TestTransferAtCorruptPathsOffWhenUnarmed(t *testing.T) {
	window := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindTransfer, Node: 1, Start: 0, End: 1e9, Rate: 1, Seed: 63},
	}}
	flows := []simnet.Flow{{Src: 1, Dst: 0, Bytes: 64 << 10}}

	silent := corruptEngine(window)
	silent.IntegrityChecks = false
	res, err := silent.transferAt(flows, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.corruptRetries != 0 || res.corruptRetryBytes != 0 {
		t.Fatalf("checks-off transfer counted re-sends: %+v", res)
	}

	pointEvents := &corrupt.Plan{Events: []corrupt.Event{
		{Kind: corrupt.KindScrub, Budget: 1 << 20, At: 0},
	}}
	armed := corruptEngine(pointEvents)
	res2, err := armed.transferAt(flows, 0)
	if err != nil {
		t.Fatal(err)
	}
	clean := corruptEngine(nil)
	if want := clean.transfer(flows); res.elapsed != want || res2.elapsed != want {
		t.Fatalf("unarmed transfers priced %v and %v, want the plan-free %v", res.elapsed, res2.elapsed, want)
	}
}

// Package linalg provides the dense linear algebra the applications and
// their golden references need: vectors, matrices, norms, and a direct
// solver used to compute the unique exact solution the paper's Figure
// 12(c) measures error against.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense vector of float64.
type Vector []float64

// Clone returns an independent copy.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns a*v.
func (v Vector) Scale(a float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// Dot returns the inner product.
func (v Vector) Dot(w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute component.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Dist2 returns the Euclidean distance between v and w.
func (v Vector) Dist2(w Vector) float64 { return v.Sub(w).Norm2() }

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	checkLen(m.Cols, len(v))
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Row(i).Dot(v)
	}
	return out
}

// IsWeaklyDiagonallyDominant reports whether |a_ii| ≥ Σ_{j≠i} |a_ij| for
// every row, with strict inequality in at least one row — the property
// the paper's linear-equation case study requires for the "nearly
// uncoupled" analysis (§VI-B) and for Jacobi convergence.
func (m *Matrix) IsWeaklyDiagonallyDominant() bool {
	if m.Rows != m.Cols {
		return false
	}
	strict := false
	for i := 0; i < m.Rows; i++ {
		var off float64
		for j := 0; j < m.Cols; j++ {
			if j != i {
				off += math.Abs(m.At(i, j))
			}
		}
		d := math.Abs(m.At(i, i))
		if d < off {
			return false
		}
		if d > off {
			strict = true
		}
	}
	return strict
}

// Solve returns x with m·x = b by Gaussian elimination with partial
// pivoting. It is the golden reference for the iterative solvers. An
// error is returned for singular (or numerically singular) systems.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Solve on %dx%d matrix", m.Rows, m.Cols)
	}
	checkLen(m.Rows, len(b))
	n := m.Rows
	a := m.Clone()
	x := b.Clone()
	for col := 0; col < n; col++ {
		// Partial pivoting.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix (column %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		d := a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b))
	}
}

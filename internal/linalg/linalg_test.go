package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := v.Scale(2); got[1] != 4 {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vector{3, 4}).Norm2(); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := (Vector{-7, 2}).NormInf(); got != 7 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := (Vector{0, 0}).Dist2(Vector{3, 4}); got != 5 {
		t.Fatalf("Dist2 = %v", got)
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 9
	if v[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Dot did not panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At broken")
	}
	if r := m.Row(1); r[2] != 7 {
		t.Fatalf("Row = %v", r)
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec(Vector{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestWeakDiagonalDominance(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 2)
	m.Set(1, 1, 2) // equal, not strict
	if !m.IsWeaklyDiagonallyDominant() {
		t.Fatal("weakly dominant matrix rejected")
	}
	m.Set(0, 0, 0.5)
	if m.IsWeaklyDiagonallyDominant() {
		t.Fatal("non-dominant matrix accepted")
	}
	// All-equal rows (no strict row) are not weakly dominant.
	eq := NewMatrix(2, 2)
	eq.Set(0, 0, 1)
	eq.Set(0, 1, 1)
	eq.Set(1, 0, 1)
	eq.Set(1, 1, 1)
	if eq.IsWeaklyDiagonallyDominant() {
		t.Fatal("matrix with no strictly dominant row accepted")
	}
	rect := NewMatrix(2, 3)
	if rect.IsWeaklyDiagonallyDominant() {
		t.Fatal("rectangular matrix accepted")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := m.Solve(Vector{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial pivot position.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve(Vector{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve(Vector{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestSolveRejectsRectangular(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.Solve(Vector{1, 2}); err == nil {
		t.Fatal("rectangular solve accepted")
	}
}

// Property: for random diagonally dominant systems, Solve returns x with
// small residual ||Ax - b||.
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var off float64
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.NormFloat64()
					m.Set(i, j, v)
					off += math.Abs(v)
				}
			}
			m.Set(i, i, off+1+rng.Float64())
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := m.Solve(b)
		if err != nil {
			return false
		}
		return m.MulVec(x).Sub(b).NormInf() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve recovers a planted solution.
func TestQuickSolveRecoversPlanted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 2
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
			m.Set(i, i, m.At(i, i)+float64(n)) // make it comfortably nonsingular
		}
		want := make(Vector, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		x, err := m.Solve(m.MulVec(want))
		if err != nil {
			return false
		}
		return x.Sub(want).NormInf() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package dfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/corrupt"
)

func dataOf(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i * 31)
	}
	return out
}

func TestCorruptReplicaTargeting(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.CreateWithData("a", dataOf(2500), 0)
	if fs.CorruptReplica("missing", 0, 0, 1) {
		t.Fatal("corrupted a missing file")
	}
	if fs.CorruptReplica("a", 9, 0, 1) {
		t.Fatal("corrupted an out-of-range block")
	}
	if fs.CorruptReplica("a", 0, 7, 1) && !holds(f.Blocks[0].Replicas, 7) {
		t.Fatal("corrupted a non-replica node")
	}
	if !fs.CorruptReplica("a", 1, corrupt.PrimaryReplica, 1) {
		t.Fatal("primary-replica targeting failed")
	}
	if got := fs.Integrity().InjectedBlocks; got == 0 {
		t.Fatal("injection not counted")
	}
}

func holds(reps []int, n int) bool {
	for _, r := range reps {
		if r == n {
			return true
		}
	}
	return false
}

func TestVerifiedReadFailsOverQuarantinesAndRepairs(t *testing.T) {
	fs := newFS(t)
	data := dataOf(2500)
	f, _ := fs.CreateWithData("a", data, 0)
	primary := f.Blocks[0].Replicas[0]
	before := append([]int(nil), f.Blocks[0].Replicas...)
	if !fs.CorruptReplica("a", 0, primary, 7) {
		t.Fatal("injection failed")
	}

	got, _, err := fs.ReadDataChecked(f, primary)
	if err != nil {
		t.Fatalf("checked read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("verified read served corrupt bytes")
	}
	if holds(f.Blocks[0].Replicas, primary) {
		t.Fatal("corrupt replica not quarantined")
	}
	if len(f.Blocks[0].Replicas) != len(before) {
		t.Fatalf("replication not restored: %v -> %v", before, f.Blocks[0].Replicas)
	}
	ic := fs.Integrity()
	if ic.DetectedBlocks != 1 || ic.RepairedBlocks != 1 {
		t.Fatalf("counters: %+v", ic)
	}
	if ic.DetectedBytes != 1000 || ic.RepairedBytes != 1000 {
		t.Fatalf("byte counters: %+v", ic)
	}
	// The poisoned attempt was charged: the primary is the reader, so
	// it lands in LocalRead on top of the successful read.
	if fs.Counters().ReReplication != 1000 {
		t.Fatalf("repair traffic: %+v", fs.Counters())
	}
	evs := fs.DrainIntegrityEvents()
	if len(evs) != 2 || evs[0].Op != "detect" || evs[1].Op != "repair" {
		t.Fatalf("events: %+v", evs)
	}
	if fs.DrainIntegrityEvents() != nil {
		t.Fatal("drain did not clear events")
	}
	// Subsequent reads are clean and quiet.
	fs.ResetCounters()
	if _, _, err := fs.ReadDataChecked(f, primary); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if fs.Integrity().DetectedBlocks != 1 {
		t.Fatal("re-read re-detected")
	}
}

func TestAllReplicasCorruptSurfacesIntegrityError(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.CreateWithData("a", dataOf(500), 0)
	if n := fs.CorruptFileAll("a", 3); n != len(f.Blocks[0].Replicas) {
		t.Fatalf("CorruptFileAll poisoned %d replicas", n)
	}
	reps := append([]int(nil), f.Blocks[0].Replicas...)
	_, _, err := fs.ReadDataChecked(f, 0)
	var ie *IntegrityError
	if !errors.As(err, &ie) || ie.File != "a" || ie.Block != 0 {
		t.Fatalf("want IntegrityError for block 0, got %v", err)
	}
	// Nothing was charged or quarantined: rollback needs the file intact.
	if got := f.Blocks[0].Replicas; len(got) != len(reps) {
		t.Fatalf("replicas changed: %v -> %v", reps, got)
	}
	if c := fs.Counters(); c.LocalRead != 0 && c.RemoteRead != 0 {
		t.Fatalf("failed read charged: %+v", c)
	}
}

func TestDetectionOffServesPatchedBytesSilently(t *testing.T) {
	fs := newFS(t)
	fs.SetVerifyReads(false)
	data := dataOf(2500)
	f, _ := fs.CreateWithData("a", data, 0)
	primary := f.Blocks[0].Replicas[0]
	fs.CorruptReplica("a", 0, primary, 7)

	got, _ := fs.ReadData(f, primary)
	if bytes.Equal(got, data) {
		t.Fatal("detection-off read served clean bytes from a corrupt replica")
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly the one flip", diff)
	}
	if fs.Integrity().DetectedBlocks != 0 || len(fs.DrainIntegrityEvents()) != 0 {
		t.Fatal("detection-off read detected something")
	}
	// A different node reads from a clean replica and sees clean bytes.
	other := f.Blocks[0].Replicas[1]
	if got, _ := fs.ReadData(f, other); !bytes.Equal(got, data) {
		t.Fatal("clean replica served patched bytes")
	}
}

func TestScrubWalksRepairsAndHonorsBudget(t *testing.T) {
	fs := newFS(t)
	var files []*File
	for _, name := range []string{"a", "b", "c"} {
		f, _ := fs.CreateWithData(name, dataOf(2000), 0)
		files = append(files, f)
	}
	fs.CorruptReplica("a", 1, corrupt.PrimaryReplica, 11)
	fs.CorruptReplica("c", 0, corrupt.PrimaryReplica, 12)

	// Budget of one block's replicas: the first pass scans file "a"
	// block 0 only (3 replicas x 1000 B each).
	rep, _ := fs.Scrub(1000, 0)
	if rep.ScannedBlocks != 3 || rep.ScannedBytes != 3000 || rep.DetectedBlocks != 0 {
		t.Fatalf("first pass: %+v", rep)
	}
	// Second pass reaches a/1 and repairs it.
	rep, _ = fs.Scrub(1000, 0)
	if rep.DetectedBlocks != 1 || rep.RepairedBlocks != 1 || rep.RepairedBytes != 1000 {
		t.Fatalf("second pass: %+v", rep)
	}
	// A big pass sweeps the rest and catches c/0.
	rep, _ = fs.Scrub(1<<30, 0)
	if rep.DetectedBlocks != 1 || rep.RepairedBlocks != 1 {
		t.Fatalf("sweep pass: %+v", rep)
	}
	for _, f := range files {
		for bi := range f.Blocks {
			if len(f.Blocks[bi].Replicas) != 3 {
				t.Fatalf("%s block %d under-replicated after scrub", f.Name, bi)
			}
		}
	}
	if len(fs.patches) != 0 {
		t.Fatal("patches survived scrub repair")
	}
	ic := fs.Integrity()
	if ic.DetectedBlocks != 2 || ic.RepairedBlocks != 2 || ic.UnrepairedBlocks != 0 {
		t.Fatalf("counters: %+v", ic)
	}
	// The cursor wraps: another full sweep rescans everything quietly.
	rep, _ = fs.Scrub(1<<30, 0)
	if rep.DetectedBlocks != 0 || rep.ScannedBlocks == 0 {
		t.Fatalf("wrap pass: %+v", rep)
	}
}

func TestScrubLeavesAllCorruptBlocksForRollback(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.CreateWithData("a", dataOf(800), 0)
	fs.CorruptFileAll("a", 5)
	rep, _ := fs.Scrub(1<<30, 0)
	if rep.DetectedBlocks != 0 || rep.RepairedBlocks != 0 {
		t.Fatalf("scrub repaired an unrepairable block: %+v", rep)
	}
	if rep.UnrepairedBlocks != len(f.Blocks[0].Replicas) {
		t.Fatalf("unrepaired: %+v", rep)
	}
	if len(f.Blocks[0].Replicas) == 0 {
		t.Fatal("replica set destroyed")
	}
}

func TestLifecycleDropsPatches(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.CreateWithData("a", dataOf(500), 0)
	primary := f.Blocks[0].Replicas[0]
	fs.CorruptReplica("a", 0, primary, 1)

	// Overwrite forgets the old incarnation's damage.
	fs.CreateWithData("a", dataOf(500), 0)
	if len(fs.patches) != 0 {
		t.Fatal("overwrite kept stale patches")
	}

	fs.CorruptReplica("a", 0, primary, 1)
	fs.Delete("a")
	if len(fs.patches) != 0 {
		t.Fatal("delete kept patches")
	}

	f, _ = fs.CreateWithData("a", dataOf(500), 0)
	primary = f.Blocks[0].Replicas[0]
	fs.CorruptReplica("a", 0, primary, 1)
	fs.MarkDead(primary)
	if len(fs.patches) != 0 {
		t.Fatal("dead node kept patches")
	}
}

func TestZeroPlanReadsAreBytePerByteLegacy(t *testing.T) {
	// Two file systems, one with verification toggled off, must agree
	// on every counter when no corruption exists: the integrity layer
	// is invisible until a patch lands.
	a, b := newFS(t), newFS(t)
	b.SetVerifyReads(false)
	for _, fs := range []*FS{a, b} {
		f, _ := fs.CreateWithData("m", dataOf(3000), 1)
		fs.Read(f, 5)
		fs.ReadData(f, 2)
		if _, err := fs.ReadAt(f, 3, 10); err != nil {
			t.Fatal(err)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("verify on/off diverged with zero plan: %+v vs %+v", a.Counters(), b.Counters())
	}
	if a.Integrity() != (IntegrityCounters{}) {
		t.Fatalf("integrity counters moved: %+v", a.Integrity())
	}
}

package dfs

import (
	"errors"
	"testing"

	"repro/internal/simcluster"
	"repro/internal/simnet"
)

// netFS builds the standard 8-node FS with a network plan registered on
// the cluster fabric before any reads run.
func netFS(plan *simnet.NetworkPlan, cfg Config) (*FS, *simcluster.Cluster) {
	c := testCluster()
	c.SetNetworkPlan(plan)
	return New(c, cfg), c
}

// TestReadAtMatchesReadOutsideWindows is the dfs half of the zero-fault
// no-op guarantee: with the read starting outside every fault window,
// ReadAt must pick the same replicas and charge the same duration and
// counters as the legacy Read.
func TestReadAtMatchesReadOutsideWindows(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 50, End: 60},
	}}
	planned, _ := netFS(plan, Config{Replication: 3, BlockSize: 1000})
	clean := newFS(t)
	pf, _ := planned.Create("f", 2500, 0)
	cf, _ := clean.Create("f", 2500, 0)

	want := clean.Read(cf, 1)
	got, err := planned.ReadAt(pf, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("ReadAt outside windows = %v, Read = %v (must be identical)", got, want)
	}
	if planned.Counters() != clean.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", planned.Counters(), clean.Counters())
	}
}

// TestReadAtFailsOverAcrossReplicas isolates the reader's intra-rack
// replica: the read must succeed anyway by falling back to a cross-rack
// copy, and return to the cheap path once the window closes.
func TestReadAtFailsOverAcrossReplicas(t *testing.T) {
	// Writer 0 places replicas {0, x, y} with x and y in rack 1, so for
	// reader 1 the cheapest copy is node 0 next door.
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultNodeLink, Node: 0, Start: 0, End: 10},
	}}
	fs, c := netFS(plan, Config{Replication: 3, BlockSize: 1000})
	f, _ := fs.Create("f", 1000, 0)

	before := c.Fabric().Counters()
	if _, err := fs.ReadAt(f, 1, 5); err != nil {
		t.Fatalf("read with a cross-rack replica in reach failed: %v", err)
	}
	during := c.Fabric().Counters()
	if got := during.CrossRack - before.CrossRack; got != 1000 {
		t.Fatalf("failover moved %d cross-rack bytes, want 1000", got)
	}

	// After the window the intra-rack replica serves again.
	if _, err := fs.ReadAt(f, 1, 10); err != nil {
		t.Fatal(err)
	}
	after := c.Fabric().Counters()
	if got := after.CrossRack - during.CrossRack; got != 0 {
		t.Fatalf("healed read still crossed the core (%d bytes)", got)
	}
	if got := after.IntraRack - during.IntraRack; got != 1000 {
		t.Fatalf("healed read moved %d intra-rack bytes, want 1000", got)
	}
}

// TestReadAtAllReplicasSevered partitions the reader away from every
// replica holder: the read fails with the typed transfer error and
// charges nothing.
func TestReadAtAllReplicasSevered(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{1}, Start: 0, End: 10},
	}}
	fs, c := netFS(plan, Config{Replication: 3, BlockSize: 1000})
	f, _ := fs.Create("f", 2000, 0) // replicas on 0 and rack 1; reader 1 holds none

	before, netBefore := fs.Counters(), c.Fabric().Counters()
	_, err := fs.ReadAt(f, 1, 5)
	var te *simnet.TransferError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *simnet.TransferError", err)
	}
	if te.Kind != simnet.TransferUnreachable || te.Dst != 1 || te.At != 5 {
		t.Fatalf("TransferError = %+v", te)
	}
	if fs.Counters() != before || c.Fabric().Counters() != netBefore {
		t.Fatal("failed read charged traffic")
	}

	// A replica holder still reads its own copy locally through the cut.
	holder := f.Blocks[0].Replicas[0]
	if _, err := fs.ReadAt(f, holder, 5); err != nil {
		t.Fatalf("local read on a holder failed under the partition: %v", err)
	}
}

// TestRepairReachableAroundPartition bisects the cluster along racks:
// the near side re-replicates the blocks it can still reach, skips the
// ones it cannot, and the post-heal Repair leaves the extra copies
// alone.
func TestRepairReachableAroundPartition(t *testing.T) {
	// Replication 1 keeps each block on its writer, so the rack-1 file
	// is wholly out of reach from rack 0's side of the bisection.
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultPartition, Nodes: []int{4, 5, 6, 7}, Start: 0, End: 100},
	}}
	fs, _ := netFS(plan, Config{Replication: 1, BlockSize: 1000})
	fs.Create("near", 2000, 0)
	fs.Create("far", 1000, 4)

	// Replication 1 is already satisfied; nothing to copy, nothing lost,
	// but the far file's block is visibly out of reach.
	rep, d := fs.RepairReachable(0, 5)
	if rep.ReplicatedBlocks != 0 || rep.LostBlocks != 0 {
		t.Fatalf("replication-1 repair copied blocks: %+v", rep)
	}
	if rep.UnreachableBlocks != 1 {
		t.Fatalf("UnreachableBlocks = %d, want 1 (the far file)", rep.UnreachableBlocks)
	}
	if d != 0 {
		t.Fatalf("no-copy repair took %v", d)
	}
}

// TestRepairReachableRestoresReplication cuts the rack holding two of a
// block's three replicas: the reachable side copies the block back up
// to full replication from the surviving replica, charging the copies
// to ReReplication, and the post-heal Repair has nothing left to do.
func TestRepairReachableRestoresReplication(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultRackUplink, Rack: 1, Start: 0, End: 100},
	}}
	fs, _ := netFS(plan, Config{Replication: 3, BlockSize: 1000})
	// Writer 0: replicas {0, x, y} with x and y in rack 1 — the cut
	// leaves one reachable copy of each block on node 0.
	f, _ := fs.Create("f", 2000, 0)

	rep, d := fs.RepairReachable(0, 5)
	if rep.ReplicatedBlocks != 4 || rep.ReplicatedBytes != 4000 {
		t.Fatalf("repair = %+v, want 2 new copies for each of 2 blocks", rep)
	}
	if rep.UnreachableBlocks != 0 || rep.LostBlocks != 0 {
		t.Fatalf("repair = %+v, want no skipped or lost blocks", rep)
	}
	if fs.Counters().ReReplication != 4000 {
		t.Fatalf("ReReplication = %d, want 4000", fs.Counters().ReReplication)
	}
	if d <= 0 {
		t.Fatal("copy burst took no time")
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 5 {
			t.Fatalf("block holds %d replicas, want 5 (3 original + 2 repairs)", len(b.Replicas))
		}
		for _, r := range b.Replicas[3:] {
			if r >= 4 {
				t.Fatalf("repair copied to far-side node %d", r)
			}
		}
	}

	// Once the fault heals the blocks are over-replicated, which Repair
	// tolerates without copying more.
	rep2, _ := fs.Repair()
	if rep2.ReplicatedBlocks != 0 {
		t.Fatalf("post-heal repair copied %d blocks over full replication", rep2.ReplicatedBlocks)
	}
}

// TestRepairReachablePricedUnderBrownout overlaps the repair with a
// core brownout: the copy burst is intra-rack only (targets are picked
// on the reachable side), so its duration must match the un-browned
// fabric exactly — the overlay prices, it does not re-route.
func TestRepairReachablePricedUnderBrownout(t *testing.T) {
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultRackUplink, Rack: 1, Start: 0, End: 100},
		{Kind: simnet.FaultCore, Start: 100, End: 200, Factor: 0.5},
	}}
	fs, _ := netFS(plan, Config{Replication: 3, BlockSize: 1000})
	fs.Create("f", 1000, 0)

	_, during := fs.RepairReachable(0, 5)

	fs2, _ := netFS(nil, Config{Replication: 3, BlockSize: 1000})
	fs2.Create("f", 1000, 0)
	fs2.MarkDead(4)
	fs2.MarkDead(5)
	fs2.MarkDead(6)
	fs2.MarkDead(7)
	_, clean := fs2.Repair()
	if during != clean {
		t.Fatalf("reachable repair priced at %v, plain repair at %v", during, clean)
	}
}

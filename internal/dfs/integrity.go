package dfs

import (
	"fmt"
	"sort"

	"repro/internal/corrupt"
	"repro/internal/integrity"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// This file is the storage half of the end-to-end integrity layer:
// scripted byte flips in individual block replicas, CRC32C
// verify-on-read with replica failover, checksum-driven re-replication
// (the unified repair path), and a budgeted background scrubber.
//
// Corruption is modeled as per-replica *patches* (offset, xor mask)
// kept beside the namespace rather than as forked copies of the data,
// so a zero corruption plan leaves every existing code path — byte
// counts, replica choice, served contents — bit-for-bit untouched.

// replicaKey identifies one replica of one block.
type replicaKey struct {
	file  string
	block int
	node  int
}

// replicaPatch is a single byte flip inside a replica's copy of its
// block. Masks are always nonzero, so a patched replica never
// checksums clean.
type replicaPatch struct {
	off  int64
	mask byte
}

// IntegrityError reports a block whose every replica failed checksum
// verification; no failover can serve it.
type IntegrityError struct {
	File  string
	Block int
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("dfs: %q block %d: checksum mismatch on every replica", e.File, e.Block)
}

// IntegrityCounters accumulates the integrity layer's activity, in
// blocks and bytes.
type IntegrityCounters struct {
	// InjectedBlocks counts replicas poisoned by the corruption plan.
	InjectedBlocks int
	// DetectedBlocks/DetectedBytes count replicas caught by a checksum
	// mismatch (on read or scrub) and quarantined.
	DetectedBlocks int
	DetectedBytes  int64
	// RepairedBlocks/RepairedBytes count block copies re-replicated
	// from a clean replica after a detection.
	RepairedBlocks int
	RepairedBytes  int64
	// ScrubbedBlocks/ScrubbedBytes count replica scans by the
	// background scrubber.
	ScrubbedBlocks int
	ScrubbedBytes  int64
	// UnrepairedBlocks counts detections the layer could not repair in
	// place (no clean replica, or no reachable target).
	UnrepairedBlocks int
}

// IntegrityEvent is one detection or repair, drained by the runtime to
// emit trace annotations. Op is "detect" or "repair".
type IntegrityEvent struct {
	Op    string
	File  string
	Block int
	Node  int
	Bytes int64
}

// Integrity returns a snapshot of the integrity counters.
func (fs *FS) Integrity() IntegrityCounters { return fs.icounters }

// DrainIntegrityEvents returns the detection/repair events recorded
// since the last drain and clears the buffer.
func (fs *FS) DrainIntegrityEvents() []IntegrityEvent {
	evs := fs.ievents
	fs.ievents = nil
	return evs
}

// SetVerifyReads toggles checksum verification on the read paths.
// Verification is on by default; turning it off models a
// checksum-less system that silently serves corrupt bytes (the
// detection-off arm of the corruption ablation).
func (fs *FS) SetVerifyReads(on bool) { fs.verify = on }

// VerifyReads reports whether verify-on-read is enabled.
func (fs *FS) VerifyReads() bool { return fs.verify }

// CorruptReplica flips one byte in node's copy of the given block,
// deterministically derived from seed. Node may be
// corrupt.PrimaryReplica to target the first-listed replica. It
// reports whether a replica was actually poisoned (false when the
// file, block, or replica does not exist, or the block is empty).
func (fs *FS) CorruptReplica(name string, block, node int, seed uint64) bool {
	f, ok := fs.files[name]
	if !ok || block < 0 || block >= len(f.Blocks) {
		return false
	}
	b := &f.Blocks[block]
	if len(b.Replicas) == 0 || b.Size == 0 {
		return false
	}
	if node == corrupt.PrimaryReplica {
		node = b.Replicas[0]
	}
	holder := false
	for _, r := range b.Replicas {
		if r == node {
			holder = true
			break
		}
	}
	if !holder {
		return false
	}
	fs.addPatch(replicaKey{name, block, node}, b.Size, seed)
	return true
}

// CorruptFileAll poisons every replica of every block of the named
// file — the checkpoint-corruption mode, where replica failover must
// not be able to mask the damage. It returns the number of replicas
// poisoned.
func (fs *FS) CorruptFileAll(name string, seed uint64) int {
	f, ok := fs.files[name]
	if !ok {
		return 0
	}
	n := 0
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.Size == 0 {
			continue
		}
		for ri, node := range b.Replicas {
			fs.addPatch(replicaKey{name, bi, node}, b.Size,
				corrupt.Mix(seed, uint64(bi), uint64(ri)))
			n++
		}
	}
	return n
}

func (fs *FS) addPatch(key replicaKey, blockSize int64, seed uint64) {
	if fs.patches == nil {
		fs.patches = map[replicaKey][]replicaPatch{}
	}
	mask := byte(seed >> 56)
	if mask == 0 {
		mask = 0xA5
	}
	fs.patches[key] = append(fs.patches[key],
		replicaPatch{off: int64(seed % uint64(blockSize)), mask: mask})
	fs.icounters.InjectedBlocks++
}

// dropPatches forgets every patch for the named file (it was deleted
// or overwritten), optionally restricted to one node (its disk died).
func (fs *FS) dropPatches(name string, node int) {
	if len(fs.patches) == 0 {
		return
	}
	for key := range fs.patches {
		if key.file == name || (name == "" && key.node == node) {
			delete(fs.patches, key)
		}
	}
}

// blockOffset returns the start of block bi within f's contents.
func blockOffset(f *File, bi int) int64 {
	var off int64
	for i := 0; i < bi; i++ {
		off += f.Blocks[i].Size
	}
	return off
}

// replicaCorrupt reports whether node's copy of block bi fails
// checksum verification. For files carrying real contents the check
// recomputes CRC32C over the replica's (patched) bytes against the
// checksum sealed at write time; size-only files carry no payload, so
// a patch marker alone is the mismatch.
func (fs *FS) replicaCorrupt(f *File, bi, node int) bool {
	ps := fs.patches[replicaKey{f.Name, bi, node}]
	if len(ps) == 0 {
		return false
	}
	if f.data == nil || bi >= len(f.sums) {
		return true
	}
	start := blockOffset(f, bi)
	buf := append([]byte(nil), f.data[start:start+f.Blocks[bi].Size]...)
	applyPatches(buf, ps)
	return integrity.Checksum(buf) != f.sums[bi]
}

func applyPatches(buf []byte, ps []replicaPatch) {
	for _, p := range ps {
		if p.off >= 0 && p.off < int64(len(buf)) {
			buf[p.off] ^= p.mask
		}
	}
}

// servedData returns the bytes a read serving each block from
// srcs[bi] observes: f's contents with the serving replicas' patches
// applied. With no patches on the serving replicas it returns f.data
// itself (the byte-identical fast path). This is the detection-off
// world: damaged bytes flow to the caller unannounced.
func (fs *FS) servedData(f *File, srcs []int) []byte {
	if f.data == nil || len(fs.patches) == 0 {
		return f.data
	}
	var out []byte
	for bi := range f.Blocks {
		ps := fs.patches[replicaKey{f.Name, bi, srcs[bi]}]
		if len(ps) == 0 {
			continue
		}
		if out == nil {
			out = append([]byte(nil), f.data...)
		}
		start := blockOffset(f, bi)
		applyPatches(out[start:start+f.Blocks[bi].Size], ps)
	}
	if out == nil {
		return f.data
	}
	return out
}

// blockRead is the per-block outcome of planning a verified read: the
// replica that serves the block, plus any replicas that were tried
// first and failed verification.
type blockRead struct {
	src      int
	poisoned []int
}

// planRead picks a serving replica for every block of f, failing over
// past corrupt replicas when verification is on. With useAt, only
// replicas reachable from the reader at time at are candidates and an
// unreachable block returns a *simnet.TransferError; a block whose
// every candidate is corrupt returns an *IntegrityError. Nothing is
// charged or mutated here, so callers preserve the all-or-nothing
// counter discipline of ReadAt.
func (fs *FS) planRead(f *File, reader int, at simtime.Time, useAt bool) ([]blockRead, error) {
	fabric := fs.cluster.Fabric()
	plan := make([]blockRead, len(f.Blocks))
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if len(b.Replicas) == 0 {
			panic("dfs: block has no live replicas (lost to node failures); check Lost before reading")
		}
		// Candidates in cost order (local, intra-rack, cross-rack),
		// replica-list order within a cost tier — the same choice the
		// unverified paths make for the first candidate.
		var cands []int
		for cost := 0; cost <= 2 && len(cands) < len(b.Replicas); cost++ {
			for _, r := range b.Replicas {
				c := 2
				switch {
				case r == reader:
					c = 0
				case fabric.Rack(r) == fabric.Rack(reader):
					c = 1
				}
				if c == cost && (!useAt || fabric.ReachableAt(r, reader, at)) {
					cands = append(cands, r)
				}
			}
		}
		if len(cands) == 0 {
			return nil, &simnet.TransferError{Kind: simnet.TransferUnreachable,
				Src: b.Replicas[0], Dst: reader, At: at}
		}
		if !fs.verify || len(fs.patches) == 0 {
			plan[bi] = blockRead{src: cands[0]}
			continue
		}
		br := blockRead{src: -1}
		for _, r := range cands {
			if fs.replicaCorrupt(f, bi, r) {
				br.poisoned = append(br.poisoned, r)
				continue
			}
			br.src = r
			break
		}
		if br.src < 0 {
			// Every candidate is corrupt: surface the mismatch rather
			// than serve damage. The replica set is left intact so the
			// caller can fall back (e.g. checkpoint rollback).
			return nil, &IntegrityError{File: f.Name, Block: bi}
		}
		plan[bi] = br
	}
	return plan, nil
}

// commitRead charges a planned read: poisoned attempts first (their
// bytes crossed the wire before the checksum failed), then the serving
// replica, then checksum-driven repair of each quarantined copy from
// the clean source. It returns the flow list and the serving replica
// per block.
func (fs *FS) commitRead(f *File, reader int, plan []blockRead, at simtime.Time, useAt bool) ([]simnet.Flow, []int) {
	var flows []simnet.Flow
	srcs := make([]int, len(plan))
	for bi, br := range plan {
		b := &f.Blocks[bi]
		srcs[bi] = br.src
		for _, bad := range br.poisoned {
			// The poisoned attempt is real traffic.
			if bad == reader {
				fs.counters.LocalRead += b.Size
			} else {
				fs.counters.RemoteRead += b.Size
				flows = append(flows, simnet.Flow{Src: bad, Dst: reader, Bytes: b.Size})
			}
			fs.quarantine(f, bi, bad)
		}
		if br.src == reader {
			fs.counters.LocalRead += b.Size
		} else {
			fs.counters.RemoteRead += b.Size
			flows = append(flows, simnet.Flow{Src: br.src, Dst: reader, Bytes: b.Size})
		}
		// Re-replicate what quarantine removed, from the replica that
		// just verified clean.
		for range br.poisoned {
			flow, ok := fs.repairBlock(f, bi, br.src, at, useAt)
			if !ok {
				continue
			}
			flows = append(flows, flow)
		}
	}
	return flows, srcs
}

// quarantine drops node's corrupt copy of block bi from the replica
// set (never the last copy — planRead guarantees a clean survivor) and
// records the detection.
func (fs *FS) quarantine(f *File, bi, node int) {
	b := &f.Blocks[bi]
	kept := b.Replicas[:0]
	for _, r := range b.Replicas {
		if r != node {
			kept = append(kept, r)
		}
	}
	b.Replicas = kept
	delete(fs.patches, replicaKey{f.Name, bi, node})
	fs.icounters.DetectedBlocks++
	fs.icounters.DetectedBytes += b.Size
	fs.ievents = append(fs.ievents, IntegrityEvent{Op: "detect", File: f.Name, Block: bi, Node: node, Bytes: b.Size})
}

// repairBlock copies block bi from the clean replica src to the next
// rotation target, restoring the copy quarantine removed. It reports
// false (and counts the block unrepaired) when no target exists or an
// active network fault severs the copy path.
func (fs *FS) repairBlock(f *File, bi, src int, at simtime.Time, useAt bool) (simnet.Flow, bool) {
	b := &f.Blocks[bi]
	live := fs.liveNodes()
	dst, ok := fs.repairTarget(b.Replicas, live)
	if !ok || (useAt && !fs.cluster.Fabric().ReachableAt(src, dst, at)) {
		fs.icounters.UnrepairedBlocks++
		return simnet.Flow{}, false
	}
	b.Replicas = append(b.Replicas, dst)
	fs.counters.ReReplication += b.Size
	fs.reReplTo[dst] += b.Size
	fs.icounters.RepairedBlocks++
	fs.icounters.RepairedBytes += b.Size
	fs.ievents = append(fs.ievents, IntegrityEvent{Op: "repair", File: f.Name, Block: bi, Node: dst, Bytes: b.Size})
	return simnet.Flow{Src: src, Dst: dst, Bytes: b.Size}, true
}

// ReadDataChecked charges a full read like ReadData but returns a
// typed error instead of serving damage: replica checksum mismatches
// fail over and repair as usual, and a block with no clean replica
// returns an *IntegrityError with nothing charged. With verification
// off it serves exactly what ReadData would — possibly corrupt bytes.
func (fs *FS) ReadDataChecked(f *File, reader int) ([]byte, simtime.Duration, error) {
	plan, err := fs.planRead(f, reader, 0, false)
	if err != nil {
		return nil, 0, err
	}
	flows, srcs := fs.commitRead(f, reader, plan, 0, false)
	return fs.servedData(f, srcs), fs.cluster.Fabric().Transfer(flows), nil
}

// ReadDataCheckedAt is ReadDataChecked honoring the registered
// NetworkPlan at time at, combining replica failover around outages
// (like ReadAt) with checksum failover.
func (fs *FS) ReadDataCheckedAt(f *File, reader int, at simtime.Time) ([]byte, simtime.Duration, error) {
	fabric := fs.cluster.Fabric()
	useAt := fabric.NetworkPlan() != nil
	plan, err := fs.planRead(f, reader, at, useAt)
	if err != nil {
		return nil, 0, err
	}
	flows, srcs := fs.commitRead(f, reader, plan, at, useAt)
	if !useAt {
		return fs.servedData(f, srcs), fabric.Transfer(flows), nil
	}
	fabric.Record(flows)
	tt, err := fabric.TransferTimeAt(flows, at)
	if err != nil {
		// planRead filtered unreachable candidates and repairBlock
		// checked its path; the fabric cannot disagree.
		panic(err)
	}
	return fs.servedData(f, srcs), tt, nil
}

// ScrubReport summarizes one scrubber pass.
type ScrubReport struct {
	// ScannedBlocks/ScannedBytes count replica copies verified.
	ScannedBlocks int
	ScannedBytes  int64
	// DetectedBlocks counts replicas that failed verification and were
	// quarantined; RepairedBlocks/RepairedBytes count the copies made
	// to replace them.
	DetectedBlocks int
	RepairedBlocks int
	RepairedBytes  int64
	// UnrepairedBlocks counts detections with no clean replica to copy
	// from (left in place for checkpoint rollback to handle).
	UnrepairedBlocks int
}

// Scrub runs one background-scrubber pass at time at: starting from a
// persistent cursor, it walks the namespace in deterministic order
// (file name, block index, replica order), verifies each replica
// against its block checksum, and re-replicates around any mismatch
// from the first clean copy. The pass ends after scanning budget
// bytes of replica data or one full namespace cycle, whichever comes
// first; the cursor persists so successive passes cover the whole
// namespace. Scanning itself is local disk I/O (free on the fabric);
// only repair copies are charged, priced under the network plan at
// `at`. The returned duration is the repair transfer time.
func (fs *FS) Scrub(budget int64, at simtime.Time) (ScrubReport, simtime.Duration) {
	var report ScrubReport
	if budget <= 0 || len(fs.files) == 0 {
		return report, 0
	}
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	// Resume from the cursor: the first name >= the remembered one.
	startN := sort.SearchStrings(names, fs.scrubFile)
	if startN == len(names) {
		startN = 0
	}
	startB := fs.scrubBlock
	if names[startN] != fs.scrubFile {
		startB = 0 // the remembered file is gone; start of its successor
	}

	totalBlocks := 0
	for _, name := range names {
		totalBlocks += len(fs.files[name].Blocks)
	}
	if totalBlocks == 0 {
		return report, 0
	}

	fabric := fs.cluster.Fabric()
	useAt := fabric.NetworkPlan() != nil
	var flows []simnet.Flow
	scanned := int64(0)
	pos, bi := startN, startB
	// One full namespace cycle at most; the budget usually stops the
	// walk first.
	for visited := 0; visited < totalBlocks && scanned < budget; visited++ {
		for bi >= len(fs.files[names[pos]].Blocks) {
			pos, bi = (pos+1)%len(names), 0
		}
		f := fs.files[names[pos]]
		b := &f.Blocks[bi]
		if b.Size == 0 || len(b.Replicas) == 0 {
			bi++
			continue
		}
		// Verify every replica of this block; remember the first clean
		// one as the repair source.
		cleanSrc, bad := -1, []int(nil)
		for _, r := range b.Replicas {
			report.ScannedBlocks++
			report.ScannedBytes += b.Size
			fs.icounters.ScrubbedBlocks++
			fs.icounters.ScrubbedBytes += b.Size
			scanned += b.Size
			if fs.replicaCorrupt(f, bi, r) {
				bad = append(bad, r)
			} else if cleanSrc < 0 {
				cleanSrc = r
			}
		}
		if len(bad) > 0 && cleanSrc < 0 {
			// No clean copy anywhere: leave the replicas (and their
			// patches) in place so readers surface an IntegrityError.
			report.UnrepairedBlocks += len(bad)
			fs.icounters.UnrepairedBlocks += len(bad)
		} else {
			for _, r := range bad {
				fs.quarantine(f, bi, r)
				report.DetectedBlocks++
				flow, ok := fs.repairBlock(f, bi, cleanSrc, at, useAt)
				if !ok {
					continue
				}
				flows = append(flows, flow)
				report.RepairedBlocks++
				report.RepairedBytes += flow.Bytes
			}
		}
		bi++
	}
	// Persist the cursor at the next unscanned position.
	for bi >= len(fs.files[names[pos]].Blocks) {
		pos, bi = (pos+1)%len(names), 0
	}
	fs.scrubFile, fs.scrubBlock = names[pos], bi

	if useAt {
		fabric.Record(flows)
		d, err := fabric.TransferTimeAt(flows, at)
		if err != nil {
			panic(err)
		}
		return report, d
	}
	return report, fabric.Transfer(flows)
}

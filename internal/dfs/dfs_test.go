package dfs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simcluster"
)

func testCluster() *simcluster.Cluster {
	return simcluster.New(simcluster.Config{
		Nodes:              8,
		RackSize:           4,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        10,
		NodeBandwidth:      100,
		RackBandwidth:      400,
		CoreBandwidth:      400,
	})
}

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(testCluster(), Config{Replication: 3, BlockSize: 1000})
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.Replication != 3 || c.BlockSize != 64<<20 {
		t.Fatalf("unexpected defaults %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg     Config
		wantMsg string
	}{
		{Config{Replication: 0, BlockSize: 1}, "Replication = 0"},
		{Config{Replication: -2, BlockSize: 1}, "Replication = -2"},
		{Config{Replication: 1, BlockSize: 0}, "BlockSize = 0"},
		{Config{Replication: 3, BlockSize: -4096}, "BlockSize = -4096"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("config %+v accepted", tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("config %+v: err = %v, want mention of %q", tc.cfg, err, tc.wantMsg)
		}
	}
}

func TestCreateAndOpen(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("model", 2500, 0)
	if got, ok := fs.Open("model"); !ok || got != f {
		t.Fatal("Open did not return the created file")
	}
	if f.Size() != 2500 {
		t.Fatalf("Size = %d, want 2500", f.Size())
	}
	if len(f.Blocks) != 3 { // 1000 + 1000 + 500
		t.Fatalf("got %d blocks, want 3", len(f.Blocks))
	}
	if f.Blocks[2].Size != 500 {
		t.Fatalf("last block size = %d, want 500", f.Blocks[2].Size)
	}
}

func TestOpenMissing(t *testing.T) {
	fs := newFS(t)
	if _, ok := fs.Open("nope"); ok {
		t.Fatal("Open returned a missing file")
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t)
	fs.Create("f", 10, -1)
	fs.Delete("f")
	if _, ok := fs.Open("f"); ok {
		t.Fatal("file survived Delete")
	}
	fs.Delete("f") // deleting again is a no-op
}

func TestCreateOverwrites(t *testing.T) {
	fs := newFS(t)
	fs.Create("f", 100, -1)
	f2, _ := fs.Create("f", 200, -1)
	got, _ := fs.Open("f")
	if got != f2 || got.Size() != 200 {
		t.Fatal("Create did not replace the file")
	}
}

func TestReplicationPolicy(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("f", 100, 1)
	b := f.Blocks[0]
	if len(b.Replicas) != 3 {
		t.Fatalf("got %d replicas, want 3", len(b.Replicas))
	}
	if b.Replicas[0] != 1 {
		t.Fatalf("primary = %d, want writer 1", b.Replicas[0])
	}
	fabric := testCluster().Fabric()
	if fabric.Rack(b.Replicas[1]) == fabric.Rack(1) {
		t.Fatalf("second replica %d in writer's rack", b.Replicas[1])
	}
	if fabric.Rack(b.Replicas[2]) != fabric.Rack(b.Replicas[1]) {
		t.Fatalf("third replica %d not in second replica's rack", b.Replicas[2])
	}
	seen := map[int]bool{}
	for _, r := range b.Replicas {
		if seen[r] {
			t.Fatalf("duplicate replica %d", r)
		}
		seen[r] = true
	}
}

func TestReplicationCappedByClusterSize(t *testing.T) {
	small := simcluster.New(simcluster.Config{
		Nodes: 2, RackSize: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		ComputeRate: 1, NodeBandwidth: 1, RackBandwidth: 1, CoreBandwidth: 1,
	})
	fs := New(small, Config{Replication: 3, BlockSize: 1000})
	f, _ := fs.Create("f", 10, 0)
	if got := len(f.Blocks[0].Replicas); got != 2 {
		t.Fatalf("got %d replicas on a 2-node cluster, want 2", got)
	}
}

func TestWritePipelineTraffic(t *testing.T) {
	cluster := testCluster()
	fs := New(cluster, Config{Replication: 3, BlockSize: 1000})
	fs.Create("f", 1000, 0)
	// Writer holds the primary: two pipeline hops of 1000 bytes each.
	if c := fs.Counters(); c.WritePipeline != 2000 {
		t.Fatalf("WritePipeline = %d, want 2000", c.WritePipeline)
	}
	if c := cluster.Fabric().Counters(); c.Total != 2000 {
		t.Fatalf("fabric Total = %d, want 2000", c.Total)
	}
}

func TestWriteTimePositive(t *testing.T) {
	fs := newFS(t)
	_, d := fs.Create("f", 1000, 0)
	if d <= 0 {
		t.Fatalf("replicated write took %v", d)
	}
}

func TestReplicationOneNoTraffic(t *testing.T) {
	cluster := testCluster()
	fs := New(cluster, Config{Replication: 1, BlockSize: 1000})
	_, d := fs.Create("f", 1000, 0)
	if d != 0 {
		t.Fatalf("unreplicated local write took %v", d)
	}
	if c := fs.Counters(); c.WritePipeline != 0 {
		t.Fatalf("WritePipeline = %d, want 0", c.WritePipeline)
	}
}

func TestLocalReadIsFree(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("f", 1000, 2)
	d := fs.Read(f, 2)
	if d != 0 {
		t.Fatalf("local read took %v", d)
	}
	c := fs.Counters()
	if c.LocalRead != 1000 || c.RemoteRead != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRemoteReadChargesTraffic(t *testing.T) {
	cluster := testCluster()
	fs := New(cluster, Config{Replication: 1, BlockSize: 1000})
	f, _ := fs.Create("f", 1000, 0)
	before := cluster.Fabric().Counters().Total
	d := fs.Read(f, 3)
	if d <= 0 {
		t.Fatal("remote read took no time")
	}
	if got := cluster.Fabric().Counters().Total - before; got != 1000 {
		t.Fatalf("remote read moved %d bytes, want 1000", got)
	}
	if c := fs.Counters(); c.RemoteRead != 1000 {
		t.Fatalf("RemoteRead = %d", c.RemoteRead)
	}
}

func TestReadPrefersIntraRackReplica(t *testing.T) {
	cluster := testCluster()
	fs := New(cluster, Config{Replication: 3, BlockSize: 1000})
	f, _ := fs.Create("f", 1000, 0) // replicas: 0, cross-rack, cross-rack-mate
	b := f.Blocks[0]
	// Reader 1 is in rack 0 with the primary but is not a replica.
	src := fs.closestReplica(b, 1)
	if cluster.Fabric().Rack(src) != cluster.Fabric().Rack(1) {
		t.Fatalf("read from node %d (rack %d), want rack-local", src, cluster.Fabric().Rack(src))
	}
}

func TestBlockHomes(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("f", 2500, -1)
	homes := f.BlockHomes()
	if len(homes) != 3 {
		t.Fatalf("got %d homes", len(homes))
	}
	for i, h := range homes {
		if h != f.Blocks[i].Replicas[0] {
			t.Fatalf("home %d = %d, want primary %d", i, h, f.Blocks[i].Replicas[0])
		}
	}
}

func TestRoundRobinPrimaries(t *testing.T) {
	fs := newFS(t)
	f1, _ := fs.Create("a", 10, -1)
	f2, _ := fs.Create("b", 10, -1)
	if f1.Blocks[0].Replicas[0] == f2.Blocks[0].Replicas[0] {
		t.Fatal("off-cluster writes did not rotate primaries")
	}
}

func TestResetCounters(t *testing.T) {
	fs := newFS(t)
	fs.Create("f", 1000, 0)
	fs.ResetCounters()
	if c := fs.Counters(); c != (Counters{}) {
		t.Fatalf("counters after reset = %+v", c)
	}
}

func TestCreateNegativeSizePanics(t *testing.T) {
	fs := newFS(t)
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	fs.Create("f", -1, 0)
}

// Property: every block's replicas are distinct valid nodes and block
// sizes sum to the file size.
func TestQuickBlockInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New(testCluster(), Config{Replication: 3, BlockSize: 1000})
		size := int64(rng.Intn(10000))
		writer := rng.Intn(10) - 2 // sometimes off-cluster
		if writer >= 8 {
			writer = -1
		}
		file, _ := fs.Create("f", size, writer)
		var total int64
		for _, b := range file.Blocks {
			total += b.Size
			if b.Size <= 0 && size > 0 {
				return false
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if r < 0 || r >= 8 || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateWithDataRoundTrip(t *testing.T) {
	fs := newFS(t)
	payload := []byte("model-checkpoint-bytes")
	f, d := fs.CreateWithData("ckpt", payload, 0)
	if d <= 0 {
		t.Fatal("replicated data write took no time")
	}
	if f.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(payload))
	}
	got, _ := fs.ReadData(f, 3)
	if string(got) != string(payload) {
		t.Fatalf("ReadData = %q", got)
	}
	// The stored copy is independent of the caller's buffer.
	payload[0] = 'X'
	if f.Data()[0] == 'X' {
		t.Fatal("CreateWithData aliases the caller's buffer")
	}
}

func TestSizeOnlyFilesHaveNoData(t *testing.T) {
	fs := newFS(t)
	f, _ := fs.Create("sized", 100, 0)
	if f.Data() != nil {
		t.Fatal("size-only file has data")
	}
	got, _ := fs.ReadData(f, 1)
	if got != nil {
		t.Fatal("ReadData on size-only file returned bytes")
	}
}

func TestStoredBytesAndReReplicationPerNode(t *testing.T) {
	fs := New(testCluster(), Config{Replication: 3, BlockSize: 1 << 20})
	fs.Create("a", 3<<20, 0)
	stored := fs.StoredBytes()
	var total int64
	for _, b := range stored {
		total += b
	}
	if total != 3*(3<<20) { // three replicas of every block
		t.Fatalf("stored total = %d", total)
	}
	if stored[0] != 3<<20 { // writer holds every primary
		t.Fatalf("stored[0] = %d", stored[0])
	}

	fs.MarkDead(0)
	report, _ := fs.Repair()
	if report.ReplicatedBytes == 0 {
		t.Fatal("repair moved nothing")
	}
	recv := fs.ReReplicationReceived()
	var recvTotal int64
	for _, b := range recv {
		recvTotal += b
	}
	if recvTotal != fs.Counters().ReReplication {
		t.Fatalf("per-node re-replication %d != counter %d", recvTotal, fs.Counters().ReReplication)
	}
	if recv[0] != 0 {
		t.Fatal("dead node received re-replication")
	}
	if got := fs.StoredBytes()[0]; got != 0 {
		t.Fatalf("dead node still stores %d bytes", got)
	}
}

// Package dfs models the cluster file system (HDFS in the paper): files
// are sequences of blocks, each block is replicated on several nodes,
// writes go through a replication pipeline, and reads prefer the closest
// replica. The PIC paper's "model update" traffic is exactly the
// replication-pipeline traffic this package charges when an iteration
// stores a new model.
package dfs

import (
	"fmt"
	"sort"

	"repro/internal/integrity"
	"repro/internal/simcluster"
	"repro/internal/simnet"
	"repro/internal/simtime"
)

// Config holds file-system parameters.
type Config struct {
	// Replication is the number of copies of each block (HDFS default
	// 3; the paper stores the model "with replicas").
	Replication int
	// BlockSize is the maximum block size in bytes (HDFS default 64 MB
	// in the Hadoop 0.20 era).
	BlockSize int64
}

// DefaultConfig mirrors Hadoop 0.20 defaults.
func DefaultConfig() Config {
	return Config{Replication: 3, BlockSize: 64 << 20}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Replication <= 0 {
		return fmt.Errorf("dfs: Replication = %d, must be positive", c.Replication)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("dfs: BlockSize = %d, must be positive", c.BlockSize)
	}
	return nil
}

// Block is one replicated extent of a file.
type Block struct {
	// Size is the block length in bytes.
	Size int64
	// Replicas lists the nodes holding a copy; Replicas[0] is the
	// primary (the writer's copy when the writer is a cluster node).
	Replicas []int
}

// File is a named sequence of blocks.
type File struct {
	Name   string
	Blocks []Block
	// data holds the file contents when the file was written with
	// CreateWithData; size-only files (traffic accounting without
	// payload) leave it nil.
	data []byte
	// sums holds the CRC32C of each block's slice of data, sealed at
	// write time; verify-on-read checks replicas against it.
	sums []uint32
}

// Data returns the stored contents, or nil for size-only files. The
// caller must not mutate the result.
func (f *File) Data() []byte { return f.data }

// Size reports the file length in bytes.
func (f *File) Size() int64 {
	var n int64
	for _, b := range f.Blocks {
		n += b.Size
	}
	return n
}

// Counters accumulates file-system traffic, in bytes.
type Counters struct {
	// WritePipeline is replication traffic that crossed node
	// boundaries during writes.
	WritePipeline int64
	// RemoteRead is read traffic served by a non-local replica.
	RemoteRead int64
	// LocalRead is read traffic served from a local replica (free).
	LocalRead int64
	// ReReplication is traffic spent restoring replication after node
	// failures (see Repair).
	ReReplication int64
}

// FS is a simulated distributed file system over one cluster fabric.
type FS struct {
	cfg      Config
	cluster  *simcluster.Cluster
	files    map[string]*File
	counters Counters
	place    int // round-robin cursor for primary placement
	// reReplTo accumulates re-replication bytes received per node
	// (indexed by global node id) — the per-node share of
	// Counters.ReReplication.
	reReplTo []int64
	// dead marks crashed nodes: their replicas are destroyed and they
	// receive no new placements until MarkAlive.
	dead map[int]bool
	// verify enables checksum verification on the read paths (on by
	// default; see SetVerifyReads).
	verify bool
	// patches holds scripted corruption: byte flips applied to
	// individual replicas' copies of their blocks. Empty patches keep
	// every path byte-identical to a corruption-free file system.
	patches map[replicaKey][]replicaPatch
	// icounters and ievents accumulate integrity-layer activity.
	icounters IntegrityCounters
	ievents   []IntegrityEvent
	// scrubFile/scrubBlock persist the background scrubber's cursor.
	scrubFile  string
	scrubBlock int
}

// New creates an empty file system on the given cluster view. The view
// should normally be the full cluster. It panics on an invalid
// configuration.
func New(cluster *simcluster.Cluster, cfg Config) *FS {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &FS{cfg: cfg, cluster: cluster, files: make(map[string]*File),
		reReplTo: make([]int64, cluster.Config().Nodes), verify: true}
}

// Config returns the file-system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Counters returns a snapshot of the traffic counters.
func (fs *FS) Counters() Counters { return fs.counters }

// StoredBytes returns the bytes of replica data each node currently
// holds, indexed by global node id — the storage-utilization view of
// the namespace. Crashed nodes hold zero (their replicas are destroyed).
func (fs *FS) StoredBytes() []int64 {
	out := make([]int64, fs.cluster.Config().Nodes)
	for _, f := range fs.files {
		for _, b := range f.Blocks {
			for _, r := range b.Replicas {
				out[r] += b.Size
			}
		}
	}
	return out
}

// ReReplicationReceived returns the re-replication bytes each node has
// received across all Repair passes, indexed by global node id. The
// values sum to Counters().ReReplication.
func (fs *FS) ReReplicationReceived() []int64 {
	return append([]int64(nil), fs.reReplTo...)
}

// ResetCounters zeroes the traffic counters.
func (fs *FS) ResetCounters() { fs.counters = Counters{} }

// Open returns the named file, or false if it does not exist.
func (fs *FS) Open(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Delete removes the named file. Deleting a missing file is a no-op.
func (fs *FS) Delete(name string) {
	delete(fs.files, name)
	fs.dropPatches(name, -1)
}

// Create writes a new file of the given size, replacing any existing
// file with the same name. writer is the node performing the write, or
// -1 for an off-cluster client (primaries are then placed round-robin).
// It returns the file and the simulated time the replication pipeline
// took; the pipeline traffic is recorded on the cluster fabric and in
// the FS counters.
func (fs *FS) Create(name string, size int64, writer int) (*File, simtime.Duration) {
	if size < 0 {
		panic("dfs: negative file size")
	}
	if writer >= 0 && fs.dead[writer] {
		// A dead writer cannot hold the primary; fall back to
		// off-cluster placement over the live nodes.
		writer = -1
	}
	f := &File{Name: name}
	var flows []simnet.Flow
	for remaining := size; ; {
		bs := remaining
		if bs > fs.cfg.BlockSize {
			bs = fs.cfg.BlockSize
		}
		replicas := fs.placeReplicas(writer)
		f.Blocks = append(f.Blocks, Block{Size: bs, Replicas: replicas})
		// Replication pipeline: writer -> r0 -> r1 -> ... Each hop
		// that crosses a node boundary is network traffic.
		prev := writer
		if prev < 0 {
			prev = replicas[0]
		}
		for _, r := range replicas {
			if r != prev {
				flows = append(flows, simnet.Flow{Src: prev, Dst: r, Bytes: bs})
				fs.counters.WritePipeline += bs
			}
			prev = r
		}
		remaining -= bs
		if remaining <= 0 {
			break
		}
	}
	fs.files[name] = f
	fs.dropPatches(name, -1) // a rewrite supersedes the old incarnation's damage
	d := fs.cluster.Fabric().Transfer(flows)
	return f, d
}

// placeReplicas chooses replica nodes for one block following the HDFS
// policy: first replica on the writer (or round-robin for off-cluster
// writers), second on a different rack when one exists, third on the
// second replica's rack. Placement is deterministic.
func (fs *FS) placeReplicas(writer int) []int {
	nodes := fs.liveNodes()
	fabric := fs.cluster.Fabric()
	n := len(nodes)
	reps := min(fs.cfg.Replication, n)

	first := writer
	if first < 0 {
		first = nodes[fs.place%n]
		fs.place++
	}
	chosen := []int{first}
	used := map[int]bool{first: true}
	firstRack := fabric.Rack(first)

	// Candidates in deterministic rotation order starting after first.
	start := sort.SearchInts(nodes, first)
	candidate := func(pred func(int) bool) (int, bool) {
		for i := 1; i <= n; i++ {
			c := nodes[(start+i)%n]
			if !used[c] && pred(c) {
				return c, true
			}
		}
		return 0, false
	}

	if reps >= 2 {
		// Prefer a different rack for the second replica.
		c, ok := candidate(func(c int) bool { return fabric.Rack(c) != firstRack })
		if !ok {
			c, ok = candidate(func(int) bool { return true })
		}
		if ok {
			chosen = append(chosen, c)
			used[c] = true
		}
	}
	for len(chosen) < reps {
		// Third and later replicas prefer the second replica's rack.
		rack := fabric.Rack(chosen[len(chosen)-1])
		c, ok := candidate(func(c int) bool { return fabric.Rack(c) == rack })
		if !ok {
			c, ok = candidate(func(int) bool { return true })
		}
		if !ok {
			break
		}
		chosen = append(chosen, c)
		used[c] = true
	}
	return chosen
}

// CreateWithData writes a file with real contents: the same placement,
// replication pipeline and traffic accounting as Create, plus the bytes
// themselves, retrievable with Data or ReadData. This is how model
// checkpoints are persisted.
func (fs *FS) CreateWithData(name string, data []byte, writer int) (*File, simtime.Duration) {
	f, d := fs.Create(name, int64(len(data)), writer)
	f.data = append([]byte(nil), data...)
	// Seal a CRC32C per block at write time; verify-on-read checks
	// replicas against these.
	f.sums = make([]uint32, len(f.Blocks))
	var off int64
	for i, b := range f.Blocks {
		f.sums[i] = integrity.Checksum(f.data[off : off+b.Size])
		off += b.Size
	}
	return f, d
}

// ReadData charges a full read of the file by node reader (see Read)
// and returns its contents. It returns nil contents for size-only
// files. When corruption patches touch the serving replicas and
// verification is off, the returned bytes carry the damage — use
// ReadDataChecked to get a typed error instead.
func (fs *FS) ReadData(f *File, reader int) ([]byte, simtime.Duration) {
	if len(fs.patches) == 0 {
		d := fs.Read(f, reader)
		return f.data, d
	}
	plan, err := fs.planRead(f, reader, 0, false)
	if err != nil {
		panic(err) // every replica corrupt; checked callers use ReadDataChecked
	}
	flows, srcs := fs.commitRead(f, reader, plan, 0, false)
	return fs.servedData(f, srcs), fs.cluster.Fabric().Transfer(flows)
}

// Read charges the traffic for node reader consuming the whole file,
// block by block, from the closest replica (local beats intra-rack
// beats cross-rack). It returns the transfer time; a fully local read
// takes zero network time. With verification on, replicas that fail
// their block checksum are charged, quarantined, repaired, and read
// around; a block with no clean replica panics (checked callers use
// ReadDataChecked).
func (fs *FS) Read(f *File, reader int) simtime.Duration {
	fabric := fs.cluster.Fabric()
	if len(fs.patches) == 0 {
		var flows []simnet.Flow
		for _, b := range f.Blocks {
			src := fs.closestReplica(b, reader)
			if src == reader {
				fs.counters.LocalRead += b.Size
				continue
			}
			fs.counters.RemoteRead += b.Size
			flows = append(flows, simnet.Flow{Src: src, Dst: reader, Bytes: b.Size})
		}
		return fabric.Transfer(flows)
	}
	plan, err := fs.planRead(f, reader, 0, false)
	if err != nil {
		panic(err)
	}
	flows, _ := fs.commitRead(f, reader, plan, 0, false)
	return fabric.Transfer(flows)
}

// ReadAt charges the traffic for node reader consuming the whole file
// like Read, but honoring the fabric's registered NetworkPlan at time
// at: each block is served by the cheapest replica still reachable
// from the reader (reads fail over around outages and partitions), and
// the read fails with a typed *simnet.TransferError when some block
// has no reachable replica. With no plan registered it is exactly
// Read. Brownouts on the surviving path stretch the returned duration.
func (fs *FS) ReadAt(f *File, reader int, at simtime.Time) (simtime.Duration, error) {
	fabric := fs.cluster.Fabric()
	if fabric.NetworkPlan() == nil {
		if len(fs.patches) == 0 {
			return fs.Read(f, reader), nil
		}
		plan, err := fs.planRead(f, reader, at, false)
		if err != nil {
			return 0, err
		}
		flows, _ := fs.commitRead(f, reader, plan, at, false)
		return fabric.Transfer(flows), nil
	}
	if len(fs.patches) == 0 {
		var flows []simnet.Flow
		var local, remote int64
		for _, b := range f.Blocks {
			src, ok := fs.closestReachableReplica(b, reader, at)
			if !ok {
				return 0, &simnet.TransferError{Kind: simnet.TransferUnreachable,
					Src: b.Replicas[0], Dst: reader, At: at}
			}
			if src == reader {
				local += b.Size
				continue
			}
			remote += b.Size
			flows = append(flows, simnet.Flow{Src: src, Dst: reader, Bytes: b.Size})
		}
		// Counters commit only once every block has a reachable source,
		// so a failed read charges nothing.
		fs.counters.LocalRead += local
		fs.counters.RemoteRead += remote
		fabric.Record(flows)
		tt, err := fabric.TransferTimeAt(flows, at)
		if err != nil {
			// Unreachable flows were filtered above; the fabric cannot
			// disagree.
			panic(err)
		}
		return tt, nil
	}
	plan, err := fs.planRead(f, reader, at, true)
	if err != nil {
		return 0, err
	}
	flows, _ := fs.commitRead(f, reader, plan, at, true)
	fabric.Record(flows)
	tt, err := fabric.TransferTimeAt(flows, at)
	if err != nil {
		panic(err)
	}
	return tt, nil
}

// ReadDataAt charges a full read like ReadAt and returns the stored
// contents (nil for size-only files). Like ReadData, it serves corrupt
// bytes silently when verification is off.
func (fs *FS) ReadDataAt(f *File, reader int, at simtime.Time) ([]byte, simtime.Duration, error) {
	if len(fs.patches) == 0 {
		d, err := fs.ReadAt(f, reader, at)
		if err != nil {
			return nil, 0, err
		}
		return f.data, d, nil
	}
	return fs.ReadDataCheckedAt(f, reader, at)
}

// closestReachableReplica picks the cheapest replica of b the reader
// can reach at time at, reporting false when the registered network
// plan severs every one.
func (fs *FS) closestReachableReplica(b Block, reader int, at simtime.Time) (int, bool) {
	if len(b.Replicas) == 0 {
		panic("dfs: block has no live replicas (lost to node failures); check Lost before reading")
	}
	fabric := fs.cluster.Fabric()
	best, bestCost := -1, 3
	for _, r := range b.Replicas {
		if !fabric.ReachableAt(r, reader, at) {
			continue
		}
		cost := 2
		switch {
		case r == reader:
			cost = 0
		case fabric.Rack(r) == fabric.Rack(reader):
			cost = 1
		}
		if cost < bestCost {
			best, bestCost = r, cost
		}
	}
	return best, best >= 0
}

// closestReplica picks the cheapest replica of b for the reader.
func (fs *FS) closestReplica(b Block, reader int) int {
	if len(b.Replicas) == 0 {
		panic("dfs: block has no live replicas (lost to node failures); check Lost before reading")
	}
	fabric := fs.cluster.Fabric()
	best := b.Replicas[0]
	bestCost := 2
	for _, r := range b.Replicas {
		cost := 2
		switch {
		case r == reader:
			cost = 0
		case fabric.Rack(r) == fabric.Rack(reader):
			cost = 1
		}
		if cost < bestCost {
			best, bestCost = r, cost
		}
	}
	return best
}

// liveNodes returns the view's nodes that are not marked dead, in
// sorted order. It panics when every node is dead: the file system has
// nowhere left to place data.
func (fs *FS) liveNodes() []int {
	all := fs.cluster.Nodes()
	if len(fs.dead) == 0 {
		return all
	}
	live := make([]int, 0, len(all))
	for _, n := range all {
		if !fs.dead[n] {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		panic("dfs: no live nodes")
	}
	return live
}

// MarkDead records node n as crashed: every replica it held is
// destroyed and it receives no new placements. Call Repair afterwards to
// restore replication from the surviving copies. Marking a dead node
// dead again is a no-op.
func (fs *FS) MarkDead(n int) {
	if fs.dead == nil {
		fs.dead = map[int]bool{}
	}
	if fs.dead[n] {
		return
	}
	fs.dead[n] = true
	fs.dropPatches("", n) // the poisoned disk is gone with the node
	for _, f := range fs.files {
		for bi := range f.Blocks {
			reps := f.Blocks[bi].Replicas
			kept := reps[:0]
			for _, r := range reps {
				if r != n {
					kept = append(kept, r)
				}
			}
			f.Blocks[bi].Replicas = kept
		}
	}
}

// MarkAlive records node n as recovered. It rejoins with empty disks —
// re-replication moved its blocks elsewhere — and becomes eligible for
// placements again; call Repair to top blocks back up to full
// replication if earlier failures left too few live nodes.
func (fs *FS) MarkAlive(n int) { delete(fs.dead, n) }

// DeadNodes returns the crashed nodes in sorted order.
func (fs *FS) DeadNodes() []int {
	out := make([]int, 0, len(fs.dead))
	for n := range fs.dead {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Lost reports whether any block of f has no surviving replica. Such a
// file can be neither read nor repaired: crashes destroy disks, so a
// recovering node does not bring lost blocks back.
func (fs *FS) Lost(f *File) bool {
	for _, b := range f.Blocks {
		if len(b.Replicas) == 0 {
			return true
		}
	}
	return false
}

// RepairReport summarizes one re-replication pass.
type RepairReport struct {
	// ReplicatedBlocks and ReplicatedBytes count the block copies made
	// to restore replication.
	ReplicatedBlocks int
	ReplicatedBytes  int64
	// LostBlocks counts blocks with no surviving replica, which cannot
	// be repaired.
	LostBlocks int
	// UnreachableBlocks counts blocks a RepairReachable pass skipped
	// because an active network fault severed every replica from the
	// repairing side; they are left for the post-heal repair.
	UnreachableBlocks int
}

// Repair scans every file for under-replicated blocks — fewer live
// replicas than min(Replication, live nodes) — and copies each from a
// surviving replica to a live node not already holding it, mirroring the
// namenode's re-replication queue. The copy traffic is charged on the
// fabric and in Counters.ReReplication, and the returned duration is the
// transfer time of the burst. The scan is deterministic (files in name
// order, targets in rotation order), so simulations with failures stay
// reproducible.
func (fs *FS) Repair() (RepairReport, simtime.Duration) {
	var report RepairReport
	live := make([]int, 0, len(fs.cluster.Nodes()))
	for _, n := range fs.cluster.Nodes() {
		if !fs.dead[n] {
			live = append(live, n)
		}
	}
	target := min(fs.cfg.Replication, len(live))

	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)

	var flows []simnet.Flow
	for _, name := range names {
		f := fs.files[name]
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			if len(b.Replicas) == 0 {
				report.LostBlocks++
				continue
			}
			for len(b.Replicas) < target {
				dst, ok := fs.repairTarget(b.Replicas, live)
				if !ok {
					break
				}
				src := b.Replicas[0]
				if b.Size > 0 {
					flows = append(flows, simnet.Flow{Src: src, Dst: dst, Bytes: b.Size})
					fs.counters.ReReplication += b.Size
					fs.reReplTo[dst] += b.Size
					report.ReplicatedBytes += b.Size
				}
				report.ReplicatedBlocks++
				b.Replicas = append(b.Replicas, dst)
			}
		}
	}
	return report, fs.cluster.Fabric().Transfer(flows)
}

// RepairReachable is Repair as a namenode on node from's side of an
// active network fault can run it at time at: only nodes alive and
// reachable from `from` serve as copy sources or targets, so the
// reachable side re-replicates around the fault while far-side
// replicas are merely uncounted, not destroyed. A block ends the pass
// with min(Replication, reachable live nodes) reachable copies; once
// the fault heals it may briefly hold more replicas than Replication,
// which later passes leave alone (extra copies are harmless). Blocks
// with no reachable replica are reported as UnreachableBlocks and
// skipped. Copy traffic is priced under the plan's overlay at `at`, so
// a concurrent brownout stretches the returned duration.
func (fs *FS) RepairReachable(from int, at simtime.Time) (RepairReport, simtime.Duration) {
	fabric := fs.cluster.Fabric()
	var report RepairReport
	reachable := make([]int, 0, len(fs.cluster.Nodes()))
	inReach := map[int]bool{}
	for _, n := range fs.cluster.Nodes() {
		if !fs.dead[n] && fabric.ReachableAt(from, n, at) {
			reachable = append(reachable, n)
			inReach[n] = true
		}
	}
	if len(reachable) == 0 {
		return report, 0
	}
	target := min(fs.cfg.Replication, len(reachable))

	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)

	var flows []simnet.Flow
	for _, name := range names {
		f := fs.files[name]
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			if len(b.Replicas) == 0 {
				report.LostBlocks++
				continue
			}
			holders := make([]int, 0, len(b.Replicas))
			for _, r := range b.Replicas {
				if inReach[r] {
					holders = append(holders, r)
				}
			}
			if len(holders) == 0 {
				report.UnreachableBlocks++
				continue
			}
			for len(holders) < target {
				dst, ok := fs.repairTarget(b.Replicas, reachable)
				if !ok {
					break
				}
				src := holders[0]
				if b.Size > 0 {
					flows = append(flows, simnet.Flow{Src: src, Dst: dst, Bytes: b.Size})
					fs.counters.ReReplication += b.Size
					fs.reReplTo[dst] += b.Size
					report.ReplicatedBytes += b.Size
				}
				report.ReplicatedBlocks++
				b.Replicas = append(b.Replicas, dst)
				holders = append(holders, dst)
			}
		}
	}
	fabric.Record(flows)
	d, err := fabric.TransferTimeAt(flows, at)
	if err != nil {
		// Sources and targets are all reachable from `from`, which the
		// tree topology makes mutually reachable.
		panic(err)
	}
	return report, d
}

// repairTarget picks the next live node to receive a block copy: the
// first live non-holder in rotation order after the newest replica.
func (fs *FS) repairTarget(holders, live []int) (int, bool) {
	used := make(map[int]bool, len(holders))
	for _, r := range holders {
		used[r] = true
	}
	start := sort.SearchInts(live, holders[len(holders)-1])
	for i := 1; i <= len(live); i++ {
		c := live[(start+i)%len(live)]
		if !used[c] {
			return c, true
		}
	}
	return 0, false
}

// BlockHomes returns the primary replica node of each block, used by the
// MapReduce runtime to derive split locality.
func (f *File) BlockHomes() []int {
	homes := make([]int, len(f.Blocks))
	for i, b := range f.Blocks {
		homes[i] = b.Replicas[0]
	}
	return homes
}

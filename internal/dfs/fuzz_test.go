package dfs

import (
	"fmt"
	"testing"

	"repro/internal/simcluster"
)

// fuzzCluster is a 6-node, 2-rack testbed for placement fuzzing.
func fuzzCluster() *simcluster.Cluster {
	return simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           3,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		ComputeRate:        1e6,
		NodeBandwidth:      1e6,
		RackBandwidth:      4e6,
		CoreBandwidth:      4e6,
	})
}

// checkReplicaInvariants asserts the property Repair maintains: every
// block of a non-lost file carries exactly min(Replication, live nodes)
// replicas, each on a distinct live node; lost blocks stay lost.
func checkReplicaInvariants(t *testing.T, fs *FS, files []*File, step string) {
	t.Helper()
	live := map[int]bool{}
	for _, n := range fs.cluster.Nodes() {
		live[n] = true
	}
	for _, n := range fs.DeadNodes() {
		delete(live, n)
	}
	want := fs.Config().Replication
	if len(live) < want {
		want = len(live)
	}
	for _, f := range files {
		for bi, b := range f.Blocks {
			if len(b.Replicas) == 0 {
				continue // lost block: nothing to restore from
			}
			if len(b.Replicas) != want {
				t.Fatalf("%s: file %q block %d has %d replicas %v, want %d (live=%d)",
					step, f.Name, bi, len(b.Replicas), b.Replicas, want, len(live))
			}
			seen := map[int]bool{}
			for _, r := range b.Replicas {
				if !live[r] {
					t.Fatalf("%s: file %q block %d replicated on dead node %d (%v)",
						step, f.Name, bi, r, b.Replicas)
				}
				if seen[r] {
					t.Fatalf("%s: file %q block %d holds duplicate replica %d (%v)",
						step, f.Name, bi, r, b.Replicas)
				}
				seen[r] = true
			}
		}
	}
}

// FuzzReplicaPlacement drives the file system through an arbitrary
// crash/recover sequence, repairing after each event, and checks the
// replication invariants at every step. Each input byte encodes one
// liveness event: the low bits select the node, one bit selects crash
// versus recover.
func FuzzReplicaPlacement(f *testing.F) {
	f.Add([]byte{0})                      // crash one node
	f.Add([]byte{0, 1, 2, 3, 4, 5})       // crash everything
	f.Add([]byte{0, 8, 0, 8})             // crash/recover node 0 twice
	f.Add([]byte{2, 3, 10, 4, 11, 5, 12}) // rolling failures with recoveries
	f.Add([]byte{5, 4, 3, 13, 12, 11})    // kill a rack, then revive it

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64] // bound the walk; longer suffixes add nothing
		}
		c := fuzzCluster()
		nodes := c.Size()
		fs := New(c, Config{Replication: 3, BlockSize: 4 << 10})
		var files []*File
		for i := 0; i < 4; i++ {
			// Mixed writers and sizes: single- and multi-block files.
			file, _ := fs.Create(fmt.Sprintf("f%d", i), int64(3<<10+i*5<<10), i%nodes)
			files = append(files, file)
		}
		checkReplicaInvariants(t, fs, files, "initial placement")

		everLost := map[string]bool{}
		for i, op := range ops {
			node := int(op) % nodes
			recover := (int(op)/nodes)%2 == 1
			if recover {
				fs.MarkAlive(node)
			} else {
				fs.MarkDead(node)
			}
			fs.Repair()
			step := fmt.Sprintf("op %d (%s node %d)", i, map[bool]string{true: "recover", false: "crash"}[recover], node)
			checkReplicaInvariants(t, fs, files, step)

			// Lost is permanent: crashes destroy disks, so once every
			// replica of a block is gone the file must stay lost even
			// after its former holders recover.
			for _, file := range files {
				if fs.Lost(file) {
					everLost[file.Name] = true
				} else if everLost[file.Name] {
					t.Fatalf("%s: file %q was lost but has recovered", step, file.Name)
				}
			}
		}

		// Full recovery: every node back, one repair pass must restore
		// full replication for all non-lost files.
		for n := 0; n < nodes; n++ {
			fs.MarkAlive(n)
		}
		fs.Repair()
		checkReplicaInvariants(t, fs, files, "after full recovery")
		for _, file := range files {
			for bi, b := range file.Blocks {
				if len(b.Replicas) != 0 && len(b.Replicas) != fs.Config().Replication {
					t.Fatalf("after full recovery file %q block %d has %d replicas",
						file.Name, bi, len(b.Replicas))
				}
			}
		}
	})
}

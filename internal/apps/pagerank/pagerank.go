// Package pagerank implements the paper's second case study (§IV-B):
// the Nutch-style PageRank computation, whose model is both the vertex
// ranks and the per-edge scores — the "large model" case where model
// update traffic dominates conventional MapReduce execution.
//
// Each iteration has two phases (the paper's Figure 7): aggregation
// (a vertex's rank is recomputed from its incoming edge scores:
// PR_i = (1-c) + c·Σ_j edge_ji) and propagation (every edge's score
// becomes the source rank divided by the source out-degree).
//
// Under PIC (Figure 8), the vertex set is split into disjoint groups;
// vertices plus fully-internal edges form the sub-graphs, and the
// cross-partition edges are grouped into p² sets. Local iterations
// update only intra-partition state; the merge step computes the scores
// of cross edges from the partial models and folds them into the
// destination vertices' ranks — "the only mechanism used to factor in
// the dependencies between the sub-problems".
package pagerank

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/webgraph"
	"repro/internal/writable"
)

// App is the PageRank application. It implements core.App, core.PICApp
// and core.BEConvergedApp.
type App struct {
	// Damping is the paper's constant c (typically 0.85).
	Damping float64
	// Tolerance is the rank-delta convergence bound; Nutch instead
	// stops on a fixed iteration cap, which experiments impose through
	// the driver options.
	Tolerance float64
	// BETolerance is the best-effort convergence bound. It defaults to
	// Tolerance (the paper's default — the same criterion): each
	// best-effort iteration is one outer block-Jacobi step that feeds
	// cross-partition rank flow through the merge, so stopping early
	// leaves inter-partition influence unpropagated.
	BETolerance float64

	// Strategy selects how the vertex set is split for the best-effort
	// phase. The paper's default is random (§IV-B); it also suggests
	// min-cut partitioning "for example using the METIS package"
	// (§VI-B), which PartitionMultilevel provides.
	Strategy PartitionStrategy

	graph  *webgraph.Graph
	assign []int // vertex -> partition (fixed per app, like the paper's static partitioning)
	parts  int
	seed   int64
}

// PartitionStrategy selects the graph partitioner for the best-effort
// phase.
type PartitionStrategy int

// The available partitioning strategies.
const (
	// PartitionRandom splits vertices uniformly at random — the
	// paper's default.
	PartitionRandom PartitionStrategy = iota
	// PartitionLocality splits vertices into contiguous ranges, which
	// aligns with communities when vertex ids do.
	PartitionLocality
	// PartitionMultilevel runs the METIS-style multilevel min-cut
	// partitioner.
	PartitionMultilevel
)

// New returns a PageRank application over g. partitionSeed fixes the
// random vertex partitioning used by the PIC best-effort phase.
func New(g *webgraph.Graph, damping, tolerance float64, partitionSeed int64) *App {
	if damping <= 0 || damping >= 1 {
		panic(fmt.Sprintf("pagerank: damping = %g out of (0,1)", damping))
	}
	if tolerance <= 0 {
		panic("pagerank: tolerance must be positive")
	}
	return &App{
		Damping:     damping,
		Tolerance:   tolerance,
		BETolerance: tolerance,
		graph:       g,
		seed:        partitionSeed,
	}
}

// Name implements core.App.
func (a *App) Name() string { return "pagerank" }

// RankKey returns the model key of vertex v's PageRank.
func RankKey(v int) string { return pad8Key('r', v) }

// EdgeKey returns the model key of edge (src,dst)'s score.
func EdgeKey(src, dst int) string {
	if uint(src) >= 100_000_000 || uint(dst) >= 100_000_000 {
		return fmt.Sprintf("e%08d:%08d", src, dst)
	}
	var b [18]byte
	b[0] = 'e'
	put8(b[1:9], src)
	b[9] = ':'
	put8(b[10:18], dst)
	return string(b[:])
}

// pad8Key renders prefix + "%08d" without fmt: the aggregation mapper
// builds one key per edge per iteration, and Sprintf dominated the
// PageRank profile.
func pad8Key(prefix byte, v int) string {
	if uint(v) >= 100_000_000 {
		return fmt.Sprintf("%c%08d", prefix, v)
	}
	var b [9]byte
	b[0] = prefix
	put8(b[1:9], v)
	return string(b[:])
}

// put8 writes v as exactly eight decimal digits, zero-padded.
func put8(dst []byte, v int) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte('0' + v%10)
		v /= 10
	}
}

// inflowKey returns the sub-model key of vertex v's frozen
// cross-partition in-flow: the summed scores of its incoming cross
// edges, fixed at their merged values for the duration of one
// best-effort iteration. This is the block-Jacobi treatment of the
// inter-partition dependencies (§VI-B's additive-Schwarz analogy): the
// paper's merge step is "the only mechanism used to factor in the
// dependencies", and freezing the inflow is the natural way to carry
// that merged information through the local iterations.
func inflowKey(v int) string { return pad8Key('f', v) }

// vertexValue encodes a vertex for the input records: component 0 is
// the vertex id, the rest are out-neighbor ids.
func vertexValue(v int, out []int32) writable.Vector {
	val := make(writable.Vector, 1+len(out))
	val[0] = float64(v)
	for i, w := range out {
		val[i+1] = float64(w)
	}
	return val
}

// Records converts the graph's adjacency into input records, one per
// vertex.
func Records(g *webgraph.Graph) []mapred.Record {
	recs := make([]mapred.Record, g.N)
	for v := 0; v < g.N; v++ {
		recs[v] = mapred.Record{Key: fmt.Sprintf("v%08d", v), Value: vertexValue(v, g.Out[v])}
	}
	return recs
}

// InitialModel builds the Nutch starting state: every rank 1.0 and every
// edge score rank/outdegree.
func InitialModel(g *webgraph.Graph) *model.Model {
	m := model.New()
	for v := 0; v < g.N; v++ {
		m.Set(RankKey(v), writable.Float64(1))
		score := 1.0 / float64(len(g.Out[v]))
		for _, w := range g.Out[v] {
			m.Set(EdgeKey(v, int(w)), writable.Float64(score))
		}
	}
	return m
}

// Ranks extracts the vertex ranks from a model.
func Ranks(m *model.Model, n int) []float64 {
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if r, ok := m.Float(RankKey(v)); ok {
			out[v] = r
		}
	}
	return out
}

// Iteration implements core.App: the aggregation job followed by the
// propagation job.
func (a *App) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	damping := a.Damping

	// Aggregation: every vertex emits, for each outgoing edge, the
	// edge's current score keyed by the destination vertex; the
	// reducer sums and applies PR = (1-c) + c·Σ.
	aggregate := &mapred.Job{
		Name:             "pagerank-aggregate",
		PartitionedModel: true, // tasks read the state of their own vertices
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, m *model.Model, emit mapred.Emitter) error {
			val := v.(writable.Vector)
			src := int(val[0])
			// During local iterations, the vertex's frozen
			// cross-partition in-flow contributes as a constant.
			if inflow, ok := m.Float(inflowKey(src)); ok && inflow != 0 {
				emit.Emit(RankKey(src), writable.Float64(inflow))
			}
			for _, wf := range val[1:] {
				dst := int(wf)
				score, ok := m.Float(EdgeKey(src, dst))
				if !ok {
					// Edge not in this (sub-)model: a cross edge
					// during local iterations. Its effect enters
					// through the frozen in-flow and the merge.
					continue
				}
				emit.Emit(RankKey(dst), writable.Float64(score))
			}
			return nil
		}),
		Combiner: floatSum{},
		Reducer: mapred.ReducerFunc(func(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
			var sum float64
			for _, v := range values {
				sum += float64(v.(writable.Float64))
			}
			emit.Emit(key, writable.Float64((1-damping)+damping*sum))
			return nil
		}),
	}
	aggOut, err := rt.RunJob(aggregate, in, m)
	if err != nil {
		return nil, err
	}
	// New ranks: vertices with no in-edges in (this partition of) the
	// graph fall back to 1-c.
	next := model.New()
	m.Range(func(key string, v writable.Writable) bool {
		if key[0] == 'r' {
			next.Set(key, writable.Float64(1-damping))
		}
		return true
	})
	for _, rec := range aggOut.Records {
		if _, tracked := m.Get(rec.Key); tracked {
			next.Set(rec.Key, rec.Value)
		}
	}

	// Propagation: every edge's score becomes new-rank/outdegree.
	propagate := &mapred.Job{
		Name:             "pagerank-propagate",
		PartitionedModel: true,
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, nm *model.Model, emit mapred.Emitter) error {
			val := v.(writable.Vector)
			src := int(val[0])
			rank, ok := nm.Float(RankKey(src))
			if !ok {
				return nil // vertex outside this partition's model
			}
			outdeg := float64(len(val) - 1)
			for _, wf := range val[1:] {
				dst := int(wf)
				ek := EdgeKey(src, dst)
				if _, tracked := m.Get(ek); !tracked {
					continue // cross edge, not part of this sub-model
				}
				emit.Emit(ek, writable.Float64(rank/outdeg))
			}
			return nil
		}),
	}
	propOut, err := rt.RunJob(propagate, in, next)
	if err != nil {
		return nil, err
	}
	for _, rec := range propOut.Records {
		next.Set(rec.Key, rec.Value)
	}
	// Frozen cross-partition in-flows persist across local iterations.
	m.Range(func(key string, v writable.Writable) bool {
		if key[0] == 'f' {
			next.Set(key, v)
		}
		return true
	})
	return next, nil
}

type floatSum struct{}

func (floatSum) Reduce(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	var sum float64
	for _, v := range values {
		sum += float64(v.(writable.Float64))
	}
	emit.Emit(key, writable.Float64(sum))
	return nil
}

// Converged implements core.App: the largest rank change is below
// Tolerance. (Nutch also simply caps iterations; experiments do that via
// driver options.)
func (a *App) Converged(prev, next *model.Model) bool {
	return model.MaxFloatDelta(prev, next) < a.Tolerance
}

// BEConverged implements core.BEConvergedApp with the looser
// best-effort bound.
func (a *App) BEConverged(prev, next *model.Model) bool {
	return model.MaxFloatDelta(prev, next) < a.BETolerance
}

// Partition implements core.PICApp: random disjoint vertex groups; each
// sub-problem holds its vertices' adjacency records, their ranks and
// the scores of fully-internal edges.
func (a *App) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	if a.assign == nil || a.parts != p {
		switch a.Strategy {
		case PartitionLocality:
			a.assign = webgraph.LocalityPartition(a.graph.N, p)
		case PartitionMultilevel:
			a.assign = webgraph.MultilevelPartition(a.graph, p)
		default:
			a.assign = webgraph.RandomPartition(a.seed, a.graph.N, p)
		}
		a.parts = p
	}
	assign := a.assign

	records, err := core.PartitionRecordsBy(in.Records(), p, func(r mapred.Record) int {
		val := r.Value.(writable.Vector)
		return assign[int(val[0])]
	})
	if err != nil {
		return nil, err
	}
	models := make([]*model.Model, p)
	for i := range models {
		models[i] = model.New()
	}
	inflow := make([]float64, a.graph.N)
	for v := 0; v < a.graph.N; v++ {
		pv := assign[v]
		if rank, ok := m.Float(RankKey(v)); ok {
			models[pv].Set(RankKey(v), writable.Float64(rank))
		}
		for _, w := range a.graph.Out[v] {
			if assign[int(w)] != pv {
				// Cross edge: excluded from the sub-graph; its
				// current score is frozen into the destination's
				// in-flow constant.
				if score, ok := m.Float(EdgeKey(v, int(w))); ok {
					inflow[int(w)] += score
				}
				continue
			}
			if score, ok := m.Float(EdgeKey(v, int(w))); ok {
				models[pv].Set(EdgeKey(v, int(w)), writable.Float64(score))
			}
		}
	}
	for v, f := range inflow {
		if f != 0 {
			models[assign[v]].Set(inflowKey(v), writable.Float64(f))
		}
	}
	subs := make([]core.SubProblem, p)
	for i := range subs {
		subs[i] = core.SubProblem{Records: records[i], Model: models[i]}
	}
	return subs, nil
}

// Merge implements core.PICApp (Figure 8): concatenate the partial
// models (ranks and internal edge scores; the frozen in-flow constants
// are dropped) and recompute the scores of all cross edges from the
// newly merged source ranks. The refreshed cross scores carry
// inter-partition influence into the next best-effort iteration through
// the in-flow constants — "the only mechanism used to factor in the
// dependencies between the sub-problems".
func (a *App) Merge(parts []*model.Model, prev *model.Model) (*model.Model, error) {
	if a.assign == nil {
		return nil, fmt.Errorf("pagerank: Merge before Partition")
	}
	merged := model.New()
	for _, part := range parts {
		var err error
		part.Range(func(key string, v writable.Writable) bool {
			if key[0] == 'f' {
				return true
			}
			if _, dup := merged.Get(key); dup {
				err = fmt.Errorf("pagerank: duplicate key %q across partitions", key)
				return false
			}
			merged.Set(key, writable.Clone(v))
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	if err := a.refreshCrossScores(merged); err != nil {
		return nil, err
	}
	return merged, nil
}

// refreshCrossScores recomputes every cross-partition edge score from
// the merged source ranks — the merge step's dependency propagation,
// shared by Merge and FinalizeMerge.
func (a *App) refreshCrossScores(merged *model.Model) error {
	groups := webgraph.CrossEdgeGroups(a.graph, a.assign, a.parts)
	for _, row := range groups {
		for _, edges := range row {
			for _, e := range edges {
				srcRank, ok := merged.Float(RankKey(int(e.Src)))
				if !ok {
					return fmt.Errorf("pagerank: merged model missing rank of %d", e.Src)
				}
				score := srcRank / float64(a.graph.OutDegree(int(e.Src)))
				merged.Set(EdgeKey(int(e.Src), int(e.Dst)), writable.Float64(score))
			}
		}
	}
	return nil
}

// Reference computes PageRank sequentially with the same two-phase
// update for the given number of iterations — the golden comparison for
// tests and quality metrics.
func Reference(g *webgraph.Graph, damping float64, iterations int) []float64 {
	ranks := make([]float64, g.N)
	scores := make(map[int64]float64, g.NumEdges())
	key := func(src, dst int) int64 { return int64(src)<<32 | int64(dst) }
	for v := 0; v < g.N; v++ {
		ranks[v] = 1
		s := 1.0 / float64(len(g.Out[v]))
		for _, w := range g.Out[v] {
			scores[key(v, int(w))] = s
		}
	}
	for it := 0; it < iterations; it++ {
		next := make([]float64, g.N)
		for v := range next {
			next[v] = 1 - damping
		}
		for v := 0; v < g.N; v++ {
			for _, w := range g.Out[v] {
				next[int(w)] += damping * scores[key(v, int(w))]
			}
		}
		ranks = next
		for v := 0; v < g.N; v++ {
			s := ranks[v] / float64(len(g.Out[v]))
			for _, w := range g.Out[v] {
				scores[key(v, int(w))] = s
			}
		}
	}
	return ranks
}

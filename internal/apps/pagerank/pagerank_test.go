package pagerank

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/webgraph"
	"repro/internal/writable"
)

func testRuntime() *core.Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e8,
		NodeBandwidth:      125e6,
		RackBandwidth:      750e6,
		CoreBandwidth:      750e6,
	})
	return core.NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 20})
}

func smallGraph() *webgraph.Graph {
	// 0 -> 1,2 ; 1 -> 2 ; 2 -> 0 ; 3 -> 2 (3 has no in-edges)
	return &webgraph.Graph{N: 4, Out: [][]int32{{1, 2}, {2}, {0}, {2}}}
}

func graphInput(rt *core.Runtime, g *webgraph.Graph) *mapred.Input {
	return mapred.NewInput(Records(g), rt.Cluster(), rt.Cluster().MapSlots())
}

func TestNewValidation(t *testing.T) {
	g := smallGraph()
	for i, fn := range []func(){
		func() { New(g, 0, 1e-6, 1) },
		func() { New(g, 1, 1e-6, 1) },
		func() { New(g, 0.85, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestInitialModel(t *testing.T) {
	g := smallGraph()
	m := InitialModel(g)
	// 4 ranks + 5 edge scores.
	if m.Len() != 9 {
		t.Fatalf("model has %d entries, want 9", m.Len())
	}
	r, _ := m.Float(RankKey(0))
	if r != 1 {
		t.Fatalf("initial rank = %v", r)
	}
	s, _ := m.Float(EdgeKey(0, 1))
	if s != 0.5 {
		t.Fatalf("initial edge score = %v, want 1/outdeg = 0.5", s)
	}
}

func TestOneIterationMatchesFormula(t *testing.T) {
	g := smallGraph()
	rt := testRuntime()
	app := New(g, 0.85, 1e-12, 1)
	m1, err := app.Iteration(rt, graphInput(rt, g), InitialModel(g))
	if err != nil {
		t.Fatal(err)
	}
	// By hand with all initial scores 1/outdeg:
	// in(0) = {2}: PR0 = 0.15 + 0.85·(1/1) = 1.0
	// in(1) = {0}: PR1 = 0.15 + 0.85·(1/2) = 0.575
	// in(2) = {0,1,3}: PR2 = 0.15 + 0.85·(1/2 + 1 + 1) = 2.275
	// in(3) = {}: PR3 = 0.15
	want := map[int]float64{0: 1.0, 1: 0.575, 2: 2.275, 3: 0.15}
	for v, w := range want {
		got, _ := m1.Float(RankKey(v))
		if math.Abs(got-w) > 1e-12 {
			t.Errorf("PR%d = %v, want %v", v, got, w)
		}
	}
	// Propagation: score(0->1) = PR0/2 = 0.5.
	s, _ := m1.Float(EdgeKey(0, 1))
	if math.Abs(s-0.5) > 1e-12 {
		t.Errorf("score(0->1) = %v, want 0.5", s)
	}
}

func TestICMatchesSequentialReference(t *testing.T) {
	g := webgraph.NearlyUncoupled(1, 200, 4, 0.1, 3)
	rt := testRuntime()
	app := New(g, 0.85, 1e-12, 1)
	res, err := core.RunIC(rt, app, graphInput(rt, g), InitialModel(g), &core.ICOptions{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := Ranks(res.Model, g.N)
	want := Reference(g, 0.85, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank %d = %v, reference %v", v, got[v], want[v])
		}
	}
}

func TestRanksAreBounded(t *testing.T) {
	g := webgraph.NearlyUncoupled(2, 300, 6, 0.1, 4)
	rt := testRuntime()
	app := New(g, 0.85, 1e-12, 1)
	res, err := core.RunIC(rt, app, graphInput(rt, g), InitialModel(g), &core.ICOptions{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range Ranks(res.Model, g.N) {
		if r < 0.15-1e-12 {
			t.Fatalf("rank %d = %v below 1-c", v, r)
		}
		if r > float64(g.N) {
			t.Fatalf("rank %d = %v absurdly large", v, r)
		}
	}
}

func TestPartitionDisjointAndComplete(t *testing.T) {
	g := webgraph.NearlyUncoupled(3, 400, 4, 0.1, 3)
	rt := testRuntime()
	app := New(g, 0.85, 1e-9, 7)
	m := InitialModel(g)
	subs, err := app.Partition(graphInput(rt, g), m, 4)
	if err != nil {
		t.Fatal(err)
	}
	totalRecords, totalRanks, totalEdges, totalInflows := 0, 0, 0, 0
	for _, sub := range subs {
		totalRecords += len(sub.Records)
		for _, k := range sub.Model.Keys() {
			switch k[0] {
			case 'r':
				totalRanks++
			case 'e':
				totalEdges++
			case 'f':
				totalInflows++
			default:
				t.Fatalf("unexpected sub-model key %q", k)
			}
		}
	}
	if totalInflows == 0 {
		t.Fatal("no frozen cross in-flows recorded")
	}
	if totalRecords != g.N {
		t.Fatalf("sub-problems hold %d records, want %d", totalRecords, g.N)
	}
	if totalRanks != g.N {
		t.Fatalf("sub-models hold %d ranks, want %d", totalRanks, g.N)
	}
	cut := webgraph.CutEdges(g, webgraph.RandomPartition(7, g.N, 4))
	if totalEdges != g.NumEdges()-cut {
		t.Fatalf("sub-models hold %d edges, want %d internal", totalEdges, g.NumEdges()-cut)
	}
}

func TestMergeRestoresAllEdges(t *testing.T) {
	g := webgraph.NearlyUncoupled(4, 200, 4, 0.2, 3)
	rt := testRuntime()
	app := New(g, 0.85, 1e-9, 7)
	m := InitialModel(g)
	subs, err := app.Partition(graphInput(rt, g), m, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Merge the unmodified sub-models: every rank and every edge score
	// (internal from the parts, cross recomputed by Merge) must be back.
	parts := make([]*model.Model, len(subs))
	for i := range subs {
		parts[i] = subs[i].Model
	}
	merged, err := app.Merge(parts, m)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != m.Len() {
		t.Fatalf("merged model has %d entries, original %d", merged.Len(), m.Len())
	}
}

func TestPICRanksCloseToIC(t *testing.T) {
	// Run both schemes to actual convergence (rather than Nutch's
	// 10-iteration cap) so they approximate the same fixed point.
	g := webgraph.NearlyUncoupled(5, 500, 5, 0.05, 3)
	appIC := New(g, 0.85, 1e-7, 7)
	rtIC := testRuntime()
	ic, err := core.RunIC(rtIC, appIC, graphInput(rtIC, g), InitialModel(g), &core.ICOptions{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !ic.Converged {
		t.Fatal("IC did not converge")
	}
	appPIC := New(g, 0.85, 1e-7, 7)
	rtPIC := testRuntime()
	pic, err := core.RunPIC(rtPIC, appPIC, graphInput(rtPIC, g), InitialModel(g), core.PICOptions{
		Partitions:          5,
		MaxBEIterations:     10,
		MaxLocalIterations:  50,
		MaxTopOffIterations: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pic.TopOffConverged {
		t.Fatal("PIC top-off did not converge")
	}
	icRanks := Ranks(ic.Model, g.N)
	picRanks := Ranks(pic.Model, g.N)
	var l1, norm float64
	for v := range icRanks {
		l1 += math.Abs(icRanks[v] - picRanks[v])
		norm += icRanks[v]
	}
	if rel := l1 / norm; rel > 0.05 {
		t.Fatalf("PIC ranks deviate %.2f%% from IC in L1", rel*100)
	}
}

func TestBEConvergedDefaultsToConverged(t *testing.T) {
	g := smallGraph()
	app := New(g, 0.85, 1e-3, 1)
	a := InitialModel(g)
	b := a.Clone()
	b.Set(RankKey(0), writable.Float64(1.005))
	// By default the best-effort criterion is the ordinary one (the
	// paper's default).
	if app.Converged(a, b) != app.BEConverged(a, b) {
		t.Fatal("default BEConverged differs from Converged")
	}
	// A looser bound can be configured explicitly.
	app.BETolerance = 1e-2
	if app.Converged(a, b) {
		t.Fatal("Converged too loose")
	}
	if !app.BEConverged(a, b) {
		t.Fatal("explicit loose BEConverged too strict")
	}
}

func TestReferenceDeterministic(t *testing.T) {
	g := webgraph.NearlyUncoupled(6, 100, 2, 0.1, 3)
	a := Reference(g, 0.85, 5)
	b := Reference(g, 0.85, 5)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("Reference not deterministic")
		}
	}
}

package pagerank

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/webgraph"
	"repro/internal/writable"
)

func bspRuntime(workers int) *core.Runtime {
	rt := testRuntime()
	rt.Engine().Workers = workers
	if err := rt.SetBackend(core.BackendBSP); err != nil {
		panic(err)
	}
	return rt
}

func TestBSPICMatchesSequentialReference(t *testing.T) {
	g := webgraph.NearlyUncoupled(1, 200, 4, 0.1, 3)
	rt := bspRuntime(1)
	app := New(g, 0.85, 1e-12, 1)
	res, err := core.RunIC(rt, app, graphInput(rt, g), InitialModel(g), &core.ICOptions{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := Ranks(res.Model, g.N)
	want := Reference(g, 0.85, 10)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("rank %d = %v, reference %v", v, got[v], want[v])
		}
	}
}

func TestBSPMatchesMapredWithinRounding(t *testing.T) {
	g := webgraph.NearlyUncoupled(3, 150, 3, 0.1, 3)
	run := func(backend core.Backend) []float64 {
		rt := testRuntime()
		if err := rt.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		app := New(g, 0.85, 1e-12, 1)
		res, err := core.RunIC(rt, app, graphInput(rt, g), InitialModel(g), &core.ICOptions{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return Ranks(res.Model, g.N)
	}
	mr := run(core.BackendMapred)
	bp := run(core.BackendBSP)
	// The vertex program replays the aggregate/propagate arithmetic but
	// may sum a vertex's inbound scores in a different order than the
	// mapred reducer, so the backends agree to rounding, not bytes.
	for v := range mr {
		if math.Abs(mr[v]-bp[v]) > 1e-12 {
			t.Fatalf("rank %d diverges across backends: mapred %v, bsp %v", v, mr[v], bp[v])
		}
	}
}

func TestBSPDeterministicAcrossWorkersAndRepeats(t *testing.T) {
	g := webgraph.NearlyUncoupled(5, 200, 4, 0.1, 3)
	run := func(workers int) ([]byte, *core.ICResult) {
		rt := bspRuntime(workers)
		app := New(g, 0.85, 1e-12, 1)
		res, err := core.RunIC(rt, app, graphInput(rt, g), InitialModel(g), &core.ICOptions{MaxIterations: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil), res
	}
	base, baseRes := run(1)
	for name, workers := range map[string]int{"workers=8": 8, "repeat": 1} {
		got, gotRes := run(workers)
		if !bytes.Equal(got, base) {
			t.Errorf("%s: BSP model bytes diverge", name)
		}
		if !reflect.DeepEqual(gotRes.Metrics, baseRes.Metrics) {
			t.Errorf("%s: metrics diverge:\n got %+v\nwant %+v", name, gotRes.Metrics, baseRes.Metrics)
		}
	}
}

// TestPICOnBSPHierarchicalMatchesFlat exercises the satellite mergers:
// pagerank's key merge is identity over disjoint rank/edge keys and
// FinalizeMerge recomputes cross scores deterministically, so the
// rack-tree merge must reproduce the flat gather byte for byte.
func TestPICOnBSPHierarchicalMatchesFlat(t *testing.T) {
	g := webgraph.NearlyUncoupled(7, 200, 4, 0.1, 3)
	run := func(hier bool) []byte {
		rt := bspRuntime(4)
		app := New(g, 0.85, 1e-9, 4)
		res, err := core.RunPIC(rt, app, graphInput(rt, g), InitialModel(g), core.PICOptions{
			Partitions:          4,
			MaxBEIterations:     3,
			MaxLocalIterations:  5,
			MaxTopOffIterations: 3,
			HierarchicalMerge:   hier,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil)
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("hierarchical merge diverges from flat merge on BSP backend")
	}
}

func TestMergeKeyIdentityAndValidation(t *testing.T) {
	app := New(smallGraph(), 0.85, 1e-6, 1)
	v := writable.Float64(0.25)
	got, err := app.MergeKey(RankKey(1), []writable.Writable{v})
	if err != nil || got != v {
		t.Fatalf("MergeKey identity = %v, %v", got, err)
	}
	if _, err := app.MergeKey(RankKey(1), []writable.Writable{v, v}); err == nil {
		t.Fatal("MergeKey accepted a duplicated rank key")
	}
	if _, err := app.MergeKeyWeighted(RankKey(1), []writable.Writable{v}, []int{1, 2}); err == nil {
		t.Fatal("MergeKeyWeighted accepted mismatched weights")
	}
	if _, err := app.MergeKeyWeighted(RankKey(1), []writable.Writable{v}, []int{0}); err == nil {
		t.Fatal("MergeKeyWeighted accepted weight 0")
	}
	if got, err := app.MergeKeyWeighted(RankKey(1), []writable.Writable{v}, []int{3}); err != nil || got != v {
		t.Fatalf("MergeKeyWeighted identity = %v, %v", got, err)
	}
}

package pagerank

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// VertexProgram implements core.VertexApp: under the BSP backend one
// PageRank iteration runs as a native two-superstep vertex program
// instead of the aggregate+propagate job pair. Superstep 0 is the
// propagation side: each vertex sends its tracked outgoing edge scores
// to the destination vertices (a float-sum combiner collapses them per
// sender node, like the mapred combiner). Superstep 1 is the
// aggregation side: each vertex sums its incoming scores plus its
// frozen cross-partition in-flow, applies PR = (1-c) + c·Σ, and votes
// to halt. The per-key semantics match Iteration exactly; floating-sum
// order may differ, so backends agree to rounding, not byte-for-byte.
func (a *App) VertexProgram(in *mapred.Input, m *model.Model) (bsp.Program, error) {
	p := &prProgram{damping: a.Damping, byID: make(map[string]*prVertex)}
	for _, split := range in.Splits {
		for _, rec := range split.Records {
			val, ok := rec.Value.(writable.Vector)
			if !ok || len(val) == 0 {
				return nil, fmt.Errorf("pagerank: record %q is not a vertex adjacency", rec.Key)
			}
			src := int(val[0])
			v := &prVertex{id: rec.Key, home: split.Home, src: src}
			_, v.hasRank = m.Float(RankKey(src))
			v.inflow, _ = m.Float(inflowKey(src))
			v.out = make([]int, len(val)-1)
			v.score = make([]float64, len(val)-1)
			v.tracked = make([]bool, len(val)-1)
			for i, wf := range val[1:] {
				dst := int(wf)
				v.out[i] = dst
				// Untracked edges are cross edges during local
				// iterations; they enter through the frozen in-flow.
				v.score[i], v.tracked[i] = m.Float(EdgeKey(src, dst))
			}
			p.verts = append(p.verts, v)
			p.byID[v.id] = v
		}
	}
	return p, nil
}

// prVertex is the per-vertex state of one iteration's program.
type prVertex struct {
	id      string
	home    int
	src     int
	out     []int     // full out-neighbor list (outdegree uses all of it)
	score   []float64 // current score of out edge i, when tracked
	tracked []bool    // out edge i present in the (sub-)model
	inflow  float64   // frozen cross-partition in-flow constant

	hasRank bool    // vertex rank tracked in the (sub-)model
	newRank float64 // set in superstep 1
}

type prProgram struct {
	damping float64
	verts   []*prVertex
	byID    map[string]*prVertex
}

// Vertices implements bsp.Program.
func (p *prProgram) Vertices() []bsp.VertexInfo {
	infos := make([]bsp.VertexInfo, len(p.verts))
	for i, v := range p.verts {
		infos[i] = bsp.VertexInfo{ID: v.id, Home: v.home}
	}
	return infos
}

// Compute implements bsp.Program.
func (p *prProgram) Compute(step int, id string, msgs []bsp.Message, s bsp.Sender) (bool, error) {
	v, ok := p.byID[id]
	if !ok {
		return false, fmt.Errorf("pagerank: unknown vertex %q", id)
	}
	if step == 0 {
		for i, dst := range v.out {
			if v.tracked[i] {
				s.Send(pad8Key('v', dst), "", writable.Float64(v.score[i]))
			}
		}
		return false, nil
	}
	sum := v.inflow
	for _, msg := range msgs {
		f, ok := msg.Value.(writable.Float64)
		if !ok {
			return false, fmt.Errorf("pagerank: vertex %q got non-float message", id)
		}
		sum += float64(f)
	}
	v.newRank = (1 - p.damping) + p.damping*sum
	return true, nil
}

// Combiner implements bsp.CombinerProgram: incoming edge scores sum.
func (p *prProgram) Combiner() bsp.Combiner { return floatSumCombiner{} }

type floatSumCombiner struct{}

func (floatSumCombiner) Combine(a, b writable.Writable) writable.Writable {
	return a.(writable.Float64) + b.(writable.Float64)
}

// Model implements bsp.Modeler, mirroring Iteration's model assembly:
// every tracked rank defaults to 1-c and is overwritten by the computed
// value; tracked edge scores become new-rank/outdegree; frozen in-flow
// constants carry over unchanged.
func (p *prProgram) Model(prev *model.Model) (*model.Model, error) {
	next := model.New()
	prev.Range(func(key string, v writable.Writable) bool {
		switch key[0] {
		case 'r':
			next.Set(key, writable.Float64(1-p.damping))
		case 'f':
			next.Set(key, v)
		}
		return true
	})
	for _, v := range p.verts {
		if !v.hasRank {
			continue // rank outside this partition's model
		}
		next.Set(RankKey(v.src), writable.Float64(v.newRank))
		outdeg := float64(len(v.out))
		for i, dst := range v.out {
			if v.tracked[i] {
				next.Set(EdgeKey(v.src, dst), writable.Float64(v.newRank/outdeg))
			}
		}
	}
	return next, nil
}

// MergeKey implements core.KeyMerger. Partial models are disjoint —
// every rank and internal edge belongs to exactly one partition — so
// the key merge is identity with a disjointness check, matching Merge's
// duplicate detection.
func (a *App) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	if len(values) != 1 {
		return nil, fmt.Errorf("pagerank: key %q in %d partitions, want 1", key, len(values))
	}
	return values[0], nil
}

// MergeKeyWeighted implements core.WeightedKeyMerger: pre-combined
// partials stay identity merges (weights only count how many partials
// each value summarizes), so hierarchical rack-level pre-merges are
// exactly as unbiased as the flat merge.
func (a *App) MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("pagerank: bad weighted merge for %q: %d values, %d weights", key, len(values), len(weights))
	}
	for _, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("pagerank: weight %d for %q", w, key)
		}
	}
	return a.MergeKey(key, values)
}

// FinalizeMerge implements core.MergeFinalizer: the distributed and
// hierarchical merges combine partials key by key, which carries the
// frozen in-flow constants through and leaves cross-edge scores stale;
// Merge's post-processing — drop the 'f' keys, recompute every cross
// edge from the merged source ranks — runs here instead.
func (a *App) FinalizeMerge(merged, _ *model.Model) (*model.Model, error) {
	if a.assign == nil {
		return nil, fmt.Errorf("pagerank: FinalizeMerge before Partition")
	}
	var frozen []string
	merged.Range(func(key string, _ writable.Writable) bool {
		if key[0] == 'f' {
			frozen = append(frozen, key)
		}
		return true
	})
	for _, key := range frozen {
		merged.Delete(key)
	}
	if err := a.refreshCrossScores(merged); err != nil {
		return nil, err
	}
	return merged, nil
}

var _ core.VertexApp = (*App)(nil)
var _ core.WeightedKeyMerger = (*App)(nil)
var _ core.MergeFinalizer = (*App)(nil)

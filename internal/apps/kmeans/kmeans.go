// Package kmeans implements the paper's first case study (§IV-A):
// K-means clustering as a conventional iterative-convergence MapReduce
// application (Figure 1(b)) and its PIC extension (Figure 6).
//
// The map computation associates each point with its closest centroid;
// a combiner pre-aggregates partial sums; the reduce computation
// re-computes centroid positions. Convergence holds when no centroid
// moved by more than a threshold. Under PIC, the input points are
// partitioned randomly, the model (all K centroids) is replicated into
// every sub-problem, and partial models are merged by averaging
// corresponding centroids — exactly the paper's choices.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// App is the K-means application. It implements core.App and
// core.PICApp.
type App struct {
	// K is the number of clusters.
	K int
	// Threshold is the convergence bound on centroid displacement.
	Threshold float64
	// BEThreshold is the best-effort convergence bound. The paper's
	// API allows "a much looser criterion to quickly terminate the
	// best-effort phase" (§III-B); it defaults to Threshold.
	BEThreshold float64
}

// New returns a K-means application.
func New(k int, threshold float64) *App {
	if k <= 0 || threshold <= 0 {
		panic(fmt.Sprintf("kmeans: bad parameters k=%d threshold=%g", k, threshold))
	}
	return &App{K: k, Threshold: threshold, BEThreshold: threshold}
}

// Name implements core.App.
func (a *App) Name() string { return "kmeans" }

// CentroidKey returns the model key of centroid j.
func CentroidKey(j int) string { return fmt.Sprintf("c%05d", j) }

// Records converts points into input records.
func Records(points []linalg.Vector) []mapred.Record {
	recs := make([]mapred.Record, len(points))
	for i, p := range points {
		recs[i] = mapred.Record{Key: fmt.Sprintf("p%d", i), Value: writable.Vector(p)}
	}
	return recs
}

// InitialModel builds a starting model from the first K points — since
// generators emit points in randomized order, this is the paper's
// "arbitrary initial model (often chosen randomly)", reproducibly.
func InitialModel(points []linalg.Vector, k int) *model.Model {
	if len(points) < k {
		panic(fmt.Sprintf("kmeans: %d points for k=%d", len(points), k))
	}
	m := model.New()
	for j := 0; j < k; j++ {
		m.Set(CentroidKey(j), writable.Vector(points[j]).Clone())
	}
	return m
}

// Centroids extracts the centroid vectors from a model in key order.
func Centroids(m *model.Model) []linalg.Vector {
	var out []linalg.Vector
	m.Range(func(_ string, v writable.Writable) bool {
		if vec, ok := v.(writable.Vector); ok {
			out = append(out, linalg.Vector(vec))
		}
		return true
	})
	return out
}

// centroidSet is a flat view of a model's centroids, extracted once per
// iteration so the per-point nearest-centroid search does not touch the
// model's sorted-key machinery.
type centroidSet struct {
	keys []string
	mus  []writable.Vector
	// dims is the common centroid dimension, or -1 when centroids are
	// ragged (or absent); flat packs the centroids contiguously when
	// dims >= 0, so the per-point search walks one cache-friendly array
	// instead of len(keys) separate slices.
	dims int
	flat []float64
}

func centroidsOf(m *model.Model) *centroidSet {
	cs := &centroidSet{dims: -1}
	m.Range(func(key string, v writable.Writable) bool {
		if mu, ok := v.(writable.Vector); ok {
			cs.keys = append(cs.keys, key)
			cs.mus = append(cs.mus, mu)
		}
		return true
	})
	for c, mu := range cs.mus {
		if c == 0 {
			cs.dims = len(mu)
		} else if len(mu) != cs.dims {
			cs.dims = -1
			break
		}
	}
	if cs.dims >= 0 && len(cs.mus) > 0 {
		cs.flat = make([]float64, 0, len(cs.mus)*cs.dims)
		for _, mu := range cs.mus {
			cs.flat = append(cs.flat, mu...)
		}
	}
	return cs
}

// nearestKey returns the model key of the centroid closest to p. All
// paths accumulate squared differences in the same component order, so
// the argmin — and every byte downstream of it — is identical whichever
// path runs.
func (cs *centroidSet) nearestKey(p writable.Vector) string {
	best := cs.nearestIndex(p)
	if best < 0 {
		return ""
	}
	return cs.keys[best]
}

// nearestIndex is nearestKey returning the centroid's index (-1 when
// the model has no centroids or every distance is NaN).
func (cs *centroidSet) nearestIndex(p writable.Vector) int {
	best := -1
	bestDist := math.Inf(1)
	switch {
	case cs.dims == 3:
		// Every paper workload clusters in three dimensions; an
		// unrolled kernel over the packed array avoids the inner loop
		// and its bounds checks entirely.
		x, y, z := p[0], p[1], p[2]
		flat := cs.flat
		for j := 0; j+3 <= len(flat); j += 3 {
			dx := x - flat[j]
			dy := y - flat[j+1]
			dz := z - flat[j+2]
			d := dx * dx
			d += dy * dy
			d += dz * dz
			if d < bestDist {
				best, bestDist = j/3, d
			}
		}
	case cs.dims > 0:
		dims := cs.dims
		pp := p[:dims]
		for j := 0; j*dims < len(cs.flat); j++ {
			mu := cs.flat[j*dims : (j+1)*dims]
			var d float64
			for i, m := range mu {
				diff := pp[i] - m
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = j, d
			}
		}
	default:
		for c, mu := range cs.mus {
			var d float64
			for i := range mu {
				diff := p[i] - mu[i]
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
	}
	return best
}

// sumReducer aggregates (point..., count) accumulators component-wise;
// it serves as both combiner and the first half of the reduce step.
type sumReducer struct{}

func (sumReducer) Reduce(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec := v.(writable.Vector)
		if len(vec) != len(acc) {
			return fmt.Errorf("kmeans: accumulator length mismatch at %q", key)
		}
		vec = vec[:len(acc)] // bounds-check elimination in the sum loop
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	emit.Emit(key, acc)
	return nil
}

// centroidReducer finishes the reduction: it sums accumulators and emits
// the new centroid (sum / count).
type centroidReducer struct{}

func (centroidReducer) Reduce(key string, values []writable.Writable, m *model.Model, emit mapred.Emitter) error {
	var agg sumCollector
	if err := (sumReducer{}).Reduce(key, values, m, &agg); err != nil {
		return err
	}
	acc := agg.acc
	n := acc[len(acc)-1]
	if n == 0 {
		return fmt.Errorf("kmeans: zero count for centroid %q", key)
	}
	centroid := make(writable.Vector, len(acc)-1)
	for i := range centroid {
		centroid[i] = acc[i] / n
	}
	emit.Emit(key, centroid)
	return nil
}

type sumCollector struct{ acc writable.Vector }

func (c *sumCollector) Emit(_ string, v writable.Writable) { c.acc = v.(writable.Vector) }

// iterMapper assigns each point to its nearest centroid. Beyond the
// record-at-a-time Map, it implements the loop-aware capabilities
// mapred.FusedMapper and mapred.LocalFuser: points are parsed once into
// a packed array cached in the job family, and each iteration's
// map+combine (or map+reduce) runs fused over it. Every fused path
// accumulates in the exact floating-point order of the cold pipeline,
// so outputs are byte-identical.
type iterMapper struct{ cs *centroidSet }

// Map implements mapred.Mapper — the cold path.
func (mp *iterMapper) Map(_ string, v writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	p := v.(writable.Vector)
	key := mp.cs.nearestKey(p)
	if key == "" {
		return fmt.Errorf("kmeans: model has no centroids")
	}
	// Build the (point..., count) accumulator in one exact-size
	// allocation; Clone+append would allocate twice per point.
	acc := make(writable.Vector, len(p)+1)
	copy(acc, p)
	acc[len(p)] = 1
	emit.Emit(key, acc)
	return nil
}

// packedPoints is the cacheable derived form of one split: its points
// packed into a contiguous array, parsed out of the record encoding
// once per job family instead of once per iteration.
type packedPoints struct {
	flat    []float64 // n × dims
	n, dims int
}

// SizeBytes implements mapred.SplitDerived.
func (d *packedPoints) SizeBytes() int64 { return int64(8 * len(d.flat)) }

// NewDerived implements mapred.FusedMapper/LocalFuser. Splits that are
// not uniform-dimension vectors decline fusion (nil): the cold path
// handles them with its per-record shape checks.
func (mp *iterMapper) NewDerived(recs []mapred.Record) mapred.SplitDerived {
	if len(recs) == 0 {
		return nil
	}
	first, ok := recs[0].Value.(writable.Vector)
	if !ok || len(first) == 0 {
		return nil
	}
	dims := len(first)
	flat := make([]float64, 0, len(recs)*dims)
	for _, r := range recs {
		p, ok := r.Value.(writable.Vector)
		if !ok || len(p) != dims {
			return nil
		}
		flat = append(flat, p...)
	}
	return &packedPoints{flat: flat, n: len(recs), dims: dims}
}

// MapSplit implements mapred.FusedMapper: map+combine over one split.
// Per-key sums start from a copy of the first arriving accumulator and
// add subsequent points in arrival order — exactly sumReducer's
// values[0].Clone()-then-add sequence — and emissions walk cs.keys in
// ascending (model) order, matching the sorted order the cold combiner
// emits in.
func (mp *iterMapper) MapSplit(d mapred.SplitDerived, _ *model.Model, emit mapred.Emitter) (int64, int64, error) {
	pp := d.(*packedPoints)
	cs := mp.cs
	k := len(cs.keys)
	if k == 0 {
		return 0, 0, fmt.Errorf("kmeans: model has no centroids")
	}
	width := pp.dims + 1
	sums := make([]float64, k*width)
	counts := make([]int64, k)
	for i := 0; i < pp.n; i++ {
		p := writable.Vector(pp.flat[i*pp.dims : (i+1)*pp.dims])
		j := cs.nearestIndex(p)
		if j < 0 {
			return 0, 0, fmt.Errorf("kmeans: model has no centroids")
		}
		acc := sums[j*width : (j+1)*width]
		if counts[j] == 0 {
			copy(acc, p)
			acc[pp.dims] = 1
		} else {
			for c, x := range p {
				acc[c] += x
			}
			acc[pp.dims]++
		}
		counts[j]++
	}
	// Pre-combine accounting: the cold path emits one (key, point+count)
	// record per point, so its intermediate bytes are Σ count_j·size_j.
	scratch := make(writable.Vector, width)
	var preBytes int64
	for j, c := range counts {
		if c == 0 {
			continue
		}
		preBytes += c * mapred.Record{Key: cs.keys[j], Value: scratch}.Size()
		emit.Emit(cs.keys[j], writable.Vector(sums[j*width:(j+1)*width]))
	}
	return int64(pp.n), preBytes, nil
}

// FuseLocal implements mapred.LocalFuser: the in-memory map+reduce of a
// best-effort local iteration. Assignment (stage 1) is pure reads and
// runs parallel; accumulation (stage 2) is serial in global arrival
// order — the exact floating-point order the cold reducer sums in after
// its stable sort. Shapes the cold path reports errors for (ragged
// dimensions, NaN distances, empty model) decline fusion instead, so
// the cold run produces its byte-identical diagnostics.
func (mp *iterMapper) FuseLocal(ds []mapred.SplitDerived, _ *model.Model, par func(int, func(int)), emit mapred.Emitter) (int64, error) {
	cs := mp.cs
	k := len(cs.keys)
	if k == 0 {
		return 0, mapred.ErrFusedUnsupported
	}
	pps := make([]*packedPoints, len(ds))
	dims := -1
	var total int64
	for i, d := range ds {
		pp := d.(*packedPoints)
		pps[i] = pp
		if pp.n == 0 {
			continue
		}
		if dims == -1 {
			dims = pp.dims
		} else if pp.dims != dims {
			return 0, mapred.ErrFusedUnsupported
		}
		total += int64(pp.n)
	}
	if dims < 0 {
		return 0, nil
	}
	assign := make([][]int32, len(pps))
	bad := make([]bool, len(pps))
	par(len(pps), func(i int) {
		pp := pps[i]
		idx := make([]int32, pp.n)
		for r := 0; r < pp.n; r++ {
			p := writable.Vector(pp.flat[r*pp.dims : (r+1)*pp.dims])
			j := cs.nearestIndex(p)
			if j < 0 {
				bad[i] = true
				return
			}
			idx[r] = int32(j)
		}
		assign[i] = idx
	})
	for _, b := range bad {
		if b {
			return 0, mapred.ErrFusedUnsupported
		}
	}
	width := dims + 1
	sums := make([]float64, k*width)
	counts := make([]int64, k)
	for i, pp := range pps {
		idx := assign[i]
		for r := 0; r < pp.n; r++ {
			j := int(idx[r])
			acc := sums[j*width : (j+1)*width]
			p := pp.flat[r*dims : (r+1)*dims]
			if counts[j] == 0 {
				copy(acc, p)
				acc[dims] = 1
			} else {
				for c, x := range p {
					acc[c] += x
				}
				acc[dims]++
			}
			counts[j]++
		}
	}
	for j, c := range counts {
		if c == 0 {
			continue
		}
		centroid := make(writable.Vector, dims)
		n := sums[j*width+dims]
		for i := range centroid {
			centroid[i] = sums[j*width+i] / n
		}
		emit.Emit(cs.keys[j], centroid)
	}
	return total, nil
}

// Iteration implements core.App: one MapReduce job assigning points to
// centroids and recomputing them.
func (a *App) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	cs := centroidsOf(m)
	job := &mapred.Job{
		Name:     "kmeans-iter",
		Mapper:   &iterMapper{cs: cs},
		Combiner: sumReducer{},
		Reducer:  centroidReducer{},
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	// Assemble the next model; centroids that attracted no points keep
	// their previous position.
	next := m.Clone()
	for _, rec := range out.Records {
		next.Set(rec.Key, rec.Value)
	}
	return next, nil
}

// Converged implements core.App: every centroid moved less than the
// threshold.
func (a *App) Converged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.Threshold
}

// BEConverged implements core.BEConvergedApp with the (possibly looser)
// best-effort bound. Successive merged models of randomly partitioned
// K-means differ by per-partition sampling noise, so a bound a few times
// the final threshold terminates the best-effort phase once merging has
// stopped making systematic progress.
func (a *App) BEConverged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.BEThreshold
}

// Partition implements core.PICApp: deal the points into p random
// sub-problems, each starting from a copy of the full model (Figure 6).
func (a *App) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	groups := core.DealRecords(in.Records(), p)
	models := core.CopyModels(m, p)
	subs := make([]core.SubProblem, p)
	for i := range subs {
		subs[i] = core.SubProblem{Records: groups[i], Model: models[i]}
	}
	return subs, nil
}

// PartitionModels implements core.LoopPartitioner: Partition's record
// deal is deterministic and model-independent, so the PIC stepper may
// keep the first best-effort iteration's record layout and refresh only
// the per-partition model copies — the loop-invariant half of the
// sub-problems stays cached on the node groups.
func (a *App) PartitionModels(m *model.Model, p int) []*model.Model {
	return core.CopyModels(m, p)
}

// Merge implements core.PICApp: average corresponding centroids from
// every partition (Figure 6 — "identifies corresponding centroid values
// from each partition and averages them").
func (a *App) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	return core.AverageModels(parts)
}

// SequentialReference runs plain in-process Lloyd iteration from the
// given starting centroids until the displacement threshold (or the
// iteration cap) — the "final solution produced by a sequential
// implementation" the paper measures distance against in §VI-A.
func SequentialReference(points []linalg.Vector, initial []linalg.Vector, threshold float64, maxIters int) []linalg.Vector {
	centroids := make([]linalg.Vector, len(initial))
	for i, c := range initial {
		centroids[i] = c.Clone()
	}
	dims := len(points[0])
	for it := 0; it < maxIters; it++ {
		sums := make([]linalg.Vector, len(centroids))
		counts := make([]int, len(centroids))
		for i := range sums {
			sums[i] = make(linalg.Vector, dims)
		}
		for _, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, mu := range centroids {
				var d float64
				for i := range mu {
					diff := p[i] - mu[i]
					d += diff * diff
				}
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			for i := range p {
				sums[best][i] += p[i]
			}
			counts[best]++
		}
		var worst float64
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			var d2 float64
			for i := range centroids[c] {
				next := sums[c][i] / float64(counts[c])
				diff := next - centroids[c][i]
				d2 += diff * diff
				centroids[c][i] = next
			}
			if d2 > worst {
				worst = d2
			}
		}
		if math.Sqrt(worst) < threshold {
			break
		}
	}
	return centroids
}

// MergeKey implements core.KeyMerger: corresponding centroids from every
// partition are averaged, so the merge can run as a distributed
// MapReduce job (§III-C).
func (a *App) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("kmeans: no values for %q", key)
	}
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec, ok := v.(writable.Vector)
		if !ok || len(vec) != len(acc) {
			return nil, fmt.Errorf("kmeans: incompatible centroids at %q", key)
		}
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(values))
	}
	return acc, nil
}

// MergeKeyWeighted implements core.WeightedKeyMerger: the
// weights-weighted mean of the partial centroids, so rack-level
// pre-averages combine without biasing toward small racks.
func (a *App) MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("kmeans: bad weighted merge for %q: %d values, %d weights", key, len(values), len(weights))
	}
	acc := make(writable.Vector, len(values[0].(writable.Vector)))
	total := 0
	for vi, v := range values {
		vec, ok := v.(writable.Vector)
		if !ok || len(vec) != len(acc) {
			return nil, fmt.Errorf("kmeans: incompatible centroids at %q", key)
		}
		w := weights[vi]
		if w < 1 {
			return nil, fmt.Errorf("kmeans: weight %d for %q", w, key)
		}
		total += w
		for i := range acc {
			acc[i] += float64(w) * vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(total)
	}
	return acc, nil
}

// InitialModelPlusPlus builds a starting model with the k-means++
// seeding strategy (deterministic in the seed): the first centroid is a
// uniformly random point and each subsequent centroid is drawn with
// probability proportional to its squared distance from the nearest
// chosen centroid. Better seeds shorten both the conventional run and
// PIC's first batch of local iterations.
func InitialModelPlusPlus(points []linalg.Vector, k int, seed int64) *model.Model {
	if len(points) < k {
		panic(fmt.Sprintf("kmeans: %d points for k=%d", len(points), k))
	}
	rng := rand.New(rand.NewSource(seed))
	chosen := make([]linalg.Vector, 0, k)
	chosen = append(chosen, points[rng.Intn(len(points))])
	dist2 := make([]float64, len(points))
	for i := range dist2 {
		dist2[i] = sqDist(points[i], chosen[0])
	}
	for len(chosen) < k {
		var total float64
		for _, d := range dist2 {
			total += d
		}
		var next linalg.Vector
		if total == 0 {
			// All remaining points coincide with chosen centroids.
			next = points[rng.Intn(len(points))]
		} else {
			r := rng.Float64() * total
			idx := len(points) - 1
			for i, d := range dist2 {
				if r < d {
					idx = i
					break
				}
				r -= d
			}
			next = points[idx]
		}
		chosen = append(chosen, next)
		for i := range dist2 {
			if d := sqDist(points[i], next); d < dist2[i] {
				dist2[i] = d
			}
		}
	}
	m := model.New()
	for j, c := range chosen {
		m.Set(CentroidKey(j), writable.Vector(c).Clone())
	}
	return m
}

func sqDist(a, b linalg.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

func testRuntime() *core.Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e8,
		NodeBandwidth:      125e6,
		RackBandwidth:      750e6,
		CoreBandwidth:      750e6,
	})
	return core.NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 20})
}

func clusteredInput(rt *core.Runtime, n, k int) (*mapred.Input, *data.PointSet) {
	// Overlapping components (sigma 20 on a ±100 box) so Lloyd's
	// algorithm needs a realistic number of iterations to settle.
	ps := data.GaussianMixture(42, n, k, 3, 100, 20)
	return mapred.NewInput(Records(ps.Points), rt.Cluster(), rt.Cluster().MapSlots()), ps
}

func TestNewValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 1) },
		func() { New(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestInitialModel(t *testing.T) {
	points := []linalg.Vector{{1, 2}, {3, 4}, {5, 6}}
	m := InitialModel(points, 2)
	if m.Len() != 2 {
		t.Fatalf("model has %d centroids", m.Len())
	}
	c0, _ := m.Vector(CentroidKey(0))
	if c0[0] != 1 || c0[1] != 2 {
		t.Fatalf("centroid 0 = %v", c0)
	}
	// The model owns copies, not the caller's slices.
	c0[0] = 99
	if points[0][0] != 1 {
		t.Fatal("InitialModel shares storage with points")
	}
}

func TestCentroidsRoundTrip(t *testing.T) {
	points := []linalg.Vector{{1, 1}, {2, 2}, {3, 3}}
	m := InitialModel(points, 3)
	cs := Centroids(m)
	if len(cs) != 3 {
		t.Fatalf("got %d centroids", len(cs))
	}
	if cs[0][0] != 1 || cs[2][0] != 3 {
		t.Fatalf("centroids out of order: %v", cs)
	}
}

func TestNearestKey(t *testing.T) {
	m := InitialModel([]linalg.Vector{{0, 0}, {10, 10}}, 2)
	cs := centroidsOf(m)
	if got := cs.nearestKey(writable.Vector{1, 1}); got != CentroidKey(0) {
		t.Fatalf("nearestKey = %q", got)
	}
	if got := cs.nearestKey(writable.Vector{9, 9}); got != CentroidKey(1) {
		t.Fatalf("nearestKey = %q", got)
	}
}

func TestICRecoversPlantedClusters(t *testing.T) {
	rt := testRuntime()
	in, ps := clusteredInput(rt, 600, 4)
	app := New(4, 1e-3)
	res, err := core.RunIC(rt, app, in, InitialModel(ps.Points, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	got := Centroids(res.Model)
	// Every true center must have a recovered centroid nearby (within
	// a few sigma of the planted spread).
	if d := quality.MatchCentroids(got, ps.TrueCenters); d > 4.0*float64(len(got)) {
		t.Fatalf("recovered centroids far from truth: total distance %v", d)
	}
}

func TestLloydStepDecreasesJagota(t *testing.T) {
	rt := testRuntime()
	in, ps := clusteredInput(rt, 400, 3)
	app := New(3, 1e-3)
	m0 := InitialModel(ps.Points, 3)
	m1, err := app.Iteration(rt, in, m0)
	if err != nil {
		t.Fatal(err)
	}
	q0 := quality.JagotaIndex(ps.Points, Centroids(m0))
	q1 := quality.JagotaIndex(ps.Points, Centroids(m1))
	if q1 > q0 {
		t.Fatalf("one Lloyd step worsened clustering: %v -> %v", q0, q1)
	}
}

func TestEmptyClusterKeepsPreviousCentroid(t *testing.T) {
	rt := testRuntime()
	// Two points near the origin; one far-away centroid attracts nothing.
	points := []linalg.Vector{{0, 0}, {1, 0}}
	in := mapred.NewInput(Records(points), rt.Cluster(), 2)
	m0 := InitialModel([]linalg.Vector{{0, 0}, {1000, 1000}}, 2)
	app := New(2, 1e-6)
	m1, err := app.Iteration(rt, in, m0)
	if err != nil {
		t.Fatal(err)
	}
	far, ok := m1.Vector(CentroidKey(1))
	if !ok || far[0] != 1000 {
		t.Fatalf("empty centroid moved: %v", far)
	}
}

func TestPICMatchesICQuality(t *testing.T) {
	// The paper's Table III: PIC's best-effort model is within a few
	// percent of IC quality, and after top-off they are equivalent.
	rtIC := testRuntime()
	inIC, ps := clusteredInput(rtIC, 600, 4)
	app := New(4, 1e-3)
	ic, err := core.RunIC(rtIC, app, inIC, InitialModel(ps.Points, 4), nil)
	if err != nil {
		t.Fatal(err)
	}

	rtPIC := testRuntime()
	inPIC, _ := clusteredInput(rtPIC, 600, 4)
	pic, err := core.RunPIC(rtPIC, app, inPIC, InitialModel(ps.Points, 4), core.PICOptions{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}

	qIC := quality.JagotaIndex(ps.Points, Centroids(ic.Model))
	qBE := quality.JagotaIndex(ps.Points, Centroids(pic.BestEffortModel))
	qPIC := quality.JagotaIndex(ps.Points, Centroids(pic.Model))
	if diff := quality.PercentDifference(qBE, qIC); diff > 10 {
		t.Fatalf("best-effort Jagota %.4f vs IC %.4f: %.1f%% apart", qBE, qIC, diff)
	}
	if diff := quality.PercentDifference(qPIC, qIC); diff > 3 {
		t.Fatalf("final PIC Jagota %.4f vs IC %.4f: %.1f%% apart", qPIC, qIC, diff)
	}
}

func TestPICTopOffIsShort(t *testing.T) {
	rt := testRuntime()
	in, ps := clusteredInput(rt, 600, 4)
	app := New(4, 1e-3)
	rtIC := testRuntime()
	inIC, _ := clusteredInput(rtIC, 600, 4)
	ic, err := core.RunIC(rtIC, app, inIC, InitialModel(ps.Points, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	pic, err := core.RunPIC(rt, app, in, InitialModel(ps.Points, 4), core.PICOptions{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !pic.TopOffConverged {
		t.Fatal("top-off did not converge")
	}
	if pic.TopOffIterations >= ic.Iterations {
		t.Fatalf("top-off took %d iterations, IC took %d — no head start",
			pic.TopOffIterations, ic.Iterations)
	}
}

func TestPICReducesNetworkTraffic(t *testing.T) {
	app := New(4, 1e-3)
	rtIC := testRuntime()
	inIC, ps := clusteredInput(rtIC, 600, 4)
	ic, err := core.RunIC(rtIC, app, inIC, InitialModel(ps.Points, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	rtPIC := testRuntime()
	inPIC, _ := clusteredInput(rtPIC, 600, 4)
	pic, err := core.RunPIC(rtPIC, app, inPIC, InitialModel(ps.Points, 4), core.PICOptions{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	icNet := ic.Metrics.ShuffleNetworkBytes + ic.Metrics.ModelBytes + ic.ModelUpdateBytes
	picNet := pic.Metrics.ShuffleNetworkBytes + pic.Metrics.ModelBytes + pic.ModelUpdateBytes +
		pic.MergeTrafficBytes
	if picNet >= icNet {
		t.Fatalf("PIC network traffic %d not below IC %d", picNet, icNet)
	}
}

func TestIterationErrorOnEmptyModel(t *testing.T) {
	rt := testRuntime()
	points := []linalg.Vector{{0, 0}}
	in := mapred.NewInput(Records(points), rt.Cluster(), 1)
	app := New(1, 1e-3)
	if _, err := app.Iteration(rt, in, InitialModel(points, 1)); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	empty := InitialModel(points, 1)
	empty.Delete(CentroidKey(0))
	if _, err := app.Iteration(rt, in, empty); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestConvergenceThreshold(t *testing.T) {
	app := New(2, 0.5)
	a := InitialModel([]linalg.Vector{{0, 0}, {10, 10}}, 2)
	b := InitialModel([]linalg.Vector{{0.1, 0}, {10, 10.2}}, 2)
	if !app.Converged(a, b) {
		t.Fatal("small move not converged")
	}
	c := InitialModel([]linalg.Vector{{2, 0}, {10, 10}}, 2)
	if app.Converged(a, c) {
		t.Fatal("large move reported converged")
	}
}

func TestPartitionPreservesPointsAndCopiesModel(t *testing.T) {
	rt := testRuntime()
	in, ps := clusteredInput(rt, 100, 2)
	app := New(2, 1e-3)
	m := InitialModel(ps.Points, 2)
	subs, err := app.Partition(in, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range subs {
		total += len(s.Records)
		if s.Model.Len() != 2 {
			t.Fatalf("sub-model has %d centroids", s.Model.Len())
		}
	}
	if total != 100 {
		t.Fatalf("partitions cover %d points", total)
	}
	// Mutating a sub-model must not touch the original.
	v, _ := subs[0].Model.Vector(CentroidKey(0))
	v[0] = math.Inf(1)
	orig, _ := m.Vector(CentroidKey(0))
	if math.IsInf(orig[0], 1) {
		t.Fatal("sub-model shares storage with original model")
	}
}

func TestMergeAveragesCentroids(t *testing.T) {
	app := New(1, 1e-3)
	a := InitialModel([]linalg.Vector{{0, 0}}, 1)
	b := InitialModel([]linalg.Vector{{2, 4}}, 1)
	m, err := app.Merge([]*model.Model{a, b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.Vector(CentroidKey(0))
	if v[0] != 1 || v[1] != 2 {
		t.Fatalf("merged centroid = %v", v)
	}
}

func TestSequentialReferenceMatchesDistributedIC(t *testing.T) {
	// §VI-A uses the sequential solution as the reference; the
	// distributed IC implementation must land on the same fixed point.
	rt := testRuntime()
	in, ps := clusteredInput(rt, 400, 3)
	app := New(3, 1e-3)
	res, err := core.RunIC(rt, app, in, InitialModel(ps.Points, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := SequentialReference(ps.Points, ps.Points[:3], 1e-3, 500)
	got := Centroids(res.Model)
	if d := quality.MatchCentroids(got, ref); d > 0.1 {
		t.Fatalf("distributed IC centroids %v away from sequential reference", d)
	}
}

func TestSequentialReferenceConverges(t *testing.T) {
	ps := data.GaussianMixture(9, 300, 4, 2, 100, 5)
	ref := SequentialReference(ps.Points, ps.Points[:4], 1e-6, 1000)
	// One more Lloyd step moves nothing: it is a fixed point.
	again := SequentialReference(ps.Points, ref, 1e-6, 1)
	if d := quality.MatchCentroids(again, ref); d > 1e-3 {
		t.Fatalf("reference not a fixed point: moved %v", d)
	}
}

// Property: merging P copies of any centroid model — centrally or per
// key — returns the model itself.
func TestQuickMergeOfCopiesIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		k := rng.Intn(5) + 1
		points := make([]linalg.Vector, k)
		for i := range points {
			points[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		}
		m := InitialModel(points, k)
		app := New(k, 1e-3)
		p := rng.Intn(4) + 2
		merged, err := app.Merge(core.CopyModels(m, p), nil)
		if err != nil || model.MaxVectorDelta(merged, m) > 1e-12 {
			return false
		}
		// Per-key path agrees.
		for _, key := range m.Keys() {
			v, _ := m.Get(key)
			values := make([]writable.Writable, p)
			for i := range values {
				values[i] = writable.Clone(v)
			}
			out, err := app.MergeKey(key, values)
			if err != nil {
				return false
			}
			want, _ := m.Vector(key)
			got := out.(writable.Vector)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPlusPlusSeedingShape(t *testing.T) {
	ps := data.GaussianMixture(3, 500, 5, 3, 100, 5)
	m := InitialModelPlusPlus(ps.Points, 5, 7)
	if m.Len() != 5 {
		t.Fatalf("model has %d centroids", m.Len())
	}
	// Deterministic in the seed.
	if !m.Equal(InitialModelPlusPlus(ps.Points, 5, 7)) {
		t.Fatal("same seed produced different seeding")
	}
	if m.Equal(InitialModelPlusPlus(ps.Points, 5, 8)) {
		t.Fatal("different seeds produced identical seeding")
	}
}

func TestPlusPlusSeedsSpreadAcrossClusters(t *testing.T) {
	// Well-separated clusters: ++ seeding should hit distinct clusters
	// far more reliably than the first-k default. Check that chosen
	// seeds cover most true centers.
	ps := data.GaussianMixture(9, 1_000, 5, 3, 100, 2)
	m := InitialModelPlusPlus(ps.Points, 5, 1)
	covered := map[int]bool{}
	for _, c := range Centroids(m) {
		covered[quality.NearestCentroid(c, ps.TrueCenters)] = true
	}
	if len(covered) < 4 {
		t.Fatalf("++ seeds cover only %d of 5 clusters", len(covered))
	}
}

func TestPlusPlusDegeneratePoints(t *testing.T) {
	// All points identical: seeding must still return k centroids.
	points := make([]linalg.Vector, 10)
	for i := range points {
		points[i] = linalg.Vector{1, 1}
	}
	m := InitialModelPlusPlus(points, 3, 1)
	if m.Len() != 3 {
		t.Fatalf("model has %d centroids", m.Len())
	}
}

func TestPlusPlusImprovesConvergence(t *testing.T) {
	rt1 := testRuntime()
	in, ps := clusteredInput(rt1, 600, 4)
	app := New(4, 1e-3)
	naive, err := core.RunIC(rt1, app, in, InitialModel(ps.Points, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := testRuntime()
	plus, err := core.RunIC(rt2, app, in, InitialModelPlusPlus(ps.Points, 4, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	qNaive := quality.JagotaIndex(ps.Points, Centroids(naive.Model))
	qPlus := quality.JagotaIndex(ps.Points, Centroids(plus.Model))
	// ++ must be at least as good (it can tie when both find the optimum).
	if qPlus > qNaive*1.05 {
		t.Fatalf("++ seeding worse: %.3f vs %.3f", qPlus, qNaive)
	}
}

package linsolve

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

func testRuntime() *core.Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e8,
		NodeBandwidth:      125e6,
		RackBandwidth:      750e6,
		CoreBandwidth:      750e6,
	})
	return core.NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 20})
}

func testSystem(n int) *App {
	sys := data.WeaklyDominantSystem(11, n, 1.6)
	return New(sys.A, sys.B, 1e-9)
}

func appInput(rt *core.Runtime, app *App) *mapred.Input {
	return mapred.NewInput(app.Records(), rt.Cluster(), rt.Cluster().MapSlots())
}

func TestNewValidation(t *testing.T) {
	a := linalg.NewMatrix(2, 2)
	for i, fn := range []func(){
		func() { New(a, linalg.Vector{1}, 1e-6) },
		func() { New(a, linalg.Vector{1, 2}, 0) },
		func() { New(linalg.NewMatrix(2, 3), linalg.Vector{1, 2}, 1e-6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestJacobiConvergesToGolden(t *testing.T) {
	app := testSystem(60)
	rt := testRuntime()
	res, err := core.RunIC(rt, app, appInput(rt, app), InitialModel(60), &core.ICOptions{MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Jacobi did not converge")
	}
	golden, err := app.Golden()
	if err != nil {
		t.Fatal(err)
	}
	x := Solution(res.Model, 60)
	if e := x.Sub(golden).NormInf(); e > 1e-6 {
		t.Fatalf("solution error %v", e)
	}
}

func TestIterationIsExactJacobiSweep(t *testing.T) {
	app := testSystem(10)
	rt := testRuntime()
	m0 := InitialModel(10)
	m1, err := app.Iteration(rt, appInput(rt, app), m0)
	if err != nil {
		t.Fatal(err)
	}
	// From x=0, one Jacobi sweep gives x_i = b_i / a_ii.
	for i := 0; i < 10; i++ {
		want := app.b[i] / app.a.At(i, i)
		got, _ := m1.Float(VarKey(i))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestZeroDiagonalRejected(t *testing.T) {
	a := linalg.NewMatrix(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	app := New(a, linalg.Vector{1, 1}, 1e-6)
	rt := testRuntime()
	if _, err := app.Iteration(rt, appInput(rt, app), InitialModel(2)); err == nil {
		t.Fatal("zero diagonal accepted")
	}
}

func TestPartitionBlocksAreDisjointAndComplete(t *testing.T) {
	app := testSystem(50)
	rt := testRuntime()
	subs, err := app.Partition(appInput(rt, app), InitialModel(50), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("got %d sub-problems", len(subs))
	}
	seen := map[string]bool{}
	rows := 0
	for _, sub := range subs {
		rows += len(sub.Records)
		for _, k := range sub.Model.Keys() {
			if seen[k] {
				t.Fatalf("variable %s in two blocks", k)
			}
			seen[k] = true
		}
	}
	if rows != 50 || len(seen) != 50 {
		t.Fatalf("blocks cover %d rows, %d variables", rows, len(seen))
	}
}

func TestPartitionFoldsExternalIntoRHS(t *testing.T) {
	// 2x2 system partitioned into two 1x1 blocks with x = (3, 5):
	// block 0's rhs must become b_0 - a_01*x_1.
	a := linalg.NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	app := New(a, linalg.Vector{10, 20}, 1e-9)
	m := InitialModel(2)
	m.Set(VarKey(0), wfloat(3))
	m.Set(VarKey(1), wfloat(5))
	rt := testRuntime()
	subs, err := app.Partition(appInput(rt, app), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	v0 := subs[0].Records[0].Value.(vec)
	if v0[1] != 10-1*5 {
		t.Fatalf("block 0 rhs = %v, want 5", v0[1])
	}
	v1 := subs[1].Records[0].Value.(vec)
	if v1[1] != 20-2*3 {
		t.Fatalf("block 1 rhs = %v, want 14", v1[1])
	}
}

func TestTooManyPartitionsRejected(t *testing.T) {
	app := testSystem(4)
	rt := testRuntime()
	if _, err := app.Partition(appInput(rt, app), InitialModel(4), 10); err == nil {
		t.Fatal("p > n accepted")
	}
}

func TestPICConvergesToGolden(t *testing.T) {
	// Block Jacobi on a weakly dominant system must reach the same
	// unique solution as plain Jacobi — the Figure 12(c) scenario.
	app := testSystem(80)
	rt := testRuntime()
	pic, err := core.RunPIC(rt, app, appInput(rt, app), InitialModel(80), core.PICOptions{
		Partitions:      6,
		MaxBEIterations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pic.TopOffConverged {
		t.Fatal("top-off did not converge")
	}
	golden, err := app.Golden()
	if err != nil {
		t.Fatal(err)
	}
	x := Solution(pic.Model, 80)
	if e := x.Sub(golden).NormInf(); e > 1e-6 {
		t.Fatalf("PIC solution error %v", e)
	}
}

func TestPICBestEffortAlreadyClose(t *testing.T) {
	// §VI-B: for nearly uncoupled systems the best-effort phase alone
	// converges near the solution.
	app := testSystem(80)
	rt := testRuntime()
	pic, err := core.RunPIC(rt, app, appInput(rt, app), InitialModel(80), core.PICOptions{
		Partitions:      6,
		MaxBEIterations: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := app.Golden()
	if err != nil {
		t.Fatal(err)
	}
	be := Solution(pic.BestEffortModel, 80)
	full := golden.NormInf()
	if e := be.Sub(golden).NormInf(); e > 0.05*full {
		t.Fatalf("best-effort error %v vs solution magnitude %v", e, full)
	}
	if pic.TopOffIterations > 20 {
		t.Fatalf("top-off needed %d iterations — best-effort model poor", pic.TopOffIterations)
	}
}

func TestSolutionHelper(t *testing.T) {
	m := InitialModel(3)
	m.Set(VarKey(1), wfloat(7))
	x := Solution(m, 3)
	if x[0] != 0 || x[1] != 7 || x[2] != 0 {
		t.Fatalf("Solution = %v", x)
	}
}

// Test shorthands.
type vec = writable.Vector

func wfloat(f float64) writable.Float64 { return writable.Float64(f) }

// Property: the Jacobi sweep (through the full MapReduce path) is an
// affine map: S(λx + (1−λ)y) = λS(x) + (1−λ)S(y).
func TestQuickJacobiSweepIsAffine(t *testing.T) {
	f := func(seed int64) bool {
		sys := data.DiffusionSystem(seed, 8, 1.5)
		app := New(sys.A, sys.B, 1e-9)
		rt := testRuntime()
		in := appInput(rt, app)

		mk := func(vals []float64) *model.Model {
			m := InitialModel(8)
			for i, v := range vals {
				m.Set(VarKey(i), wfloat(v))
			}
			return m
		}
		rng := newRand(seed)
		x := make([]float64, 8)
		y := make([]float64, 8)
		mix := make([]float64, 8)
		lambda := rng.Float64()
		for i := range x {
			x[i] = rng.NormFloat64() * 5
			y[i] = rng.NormFloat64() * 5
			mix[i] = lambda*x[i] + (1-lambda)*y[i]
		}
		sx, err := app.Iteration(rt, in, mk(x))
		if err != nil {
			return false
		}
		sy, err := app.Iteration(rt, in, mk(y))
		if err != nil {
			return false
		}
		smix, err := app.Iteration(rt, in, mk(mix))
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			a, _ := sx.Float(VarKey(i))
			b, _ := sy.Float(VarKey(i))
			c, _ := smix.Float(VarKey(i))
			if math.Abs(c-(lambda*a+(1-lambda)*b)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

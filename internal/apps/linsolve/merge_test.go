package linsolve

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/writable"
)

func TestMergeKeyIdentityAndValidation(t *testing.T) {
	app := testSystem(8)
	v := writable.Float64(1.5)
	got, err := app.MergeKey(VarKey(2), []writable.Writable{v})
	if err != nil || got != v {
		t.Fatalf("MergeKey identity = %v, %v", got, err)
	}
	if _, err := app.MergeKey(VarKey(2), []writable.Writable{v, v}); err == nil {
		t.Fatal("MergeKey accepted a variable owned by two blocks")
	}
	if _, err := app.MergeKeyWeighted(VarKey(2), []writable.Writable{v}, []int{1, 1}); err == nil {
		t.Fatal("MergeKeyWeighted accepted mismatched weights")
	}
	if _, err := app.MergeKeyWeighted(VarKey(2), []writable.Writable{v}, []int{0}); err == nil {
		t.Fatal("MergeKeyWeighted accepted weight 0")
	}
	if got, err := app.MergeKeyWeighted(VarKey(2), []writable.Writable{v}, []int{2}); err != nil || got != v {
		t.Fatalf("MergeKeyWeighted identity = %v, %v", got, err)
	}
}

// TestPICHierarchicalMatchesFlat: variable blocks are disjoint, so the
// rack-tree weighted merge must reproduce the flat concatenation byte
// for byte.
func TestPICHierarchicalMatchesFlat(t *testing.T) {
	run := func(hier bool) []byte {
		app := testSystem(48)
		rt := testRuntime()
		res, err := core.RunPIC(rt, app, appInput(rt, app), InitialModel(48), core.PICOptions{
			Partitions:          4,
			MaxBEIterations:     3,
			MaxLocalIterations:  10,
			MaxTopOffIterations: 5,
			HierarchicalMerge:   hier,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil)
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("hierarchical merge diverges from flat merge")
	}
}

// Package linsolve implements the paper's linear-equation-solver case
// study: Jacobi iteration on a weakly diagonally dominant system A·x = b
// (the property the paper notes "guarantees the nearly uncoupled
// property" and even asynchronous convergence, §VI-B).
//
// Each iteration maps over the matrix rows: x_i' = (b_i − Σ_{j≠i}
// a_ij·x_j)/a_ii, with the current solution vector x as the model.
// Under PIC the variables are split into contiguous blocks; each
// sub-problem iterates on its block with the external variables frozen
// at their last merged values — folded into the block's right-hand side
// at partition time — which is exactly the block-Jacobi / additive
// Schwarz structure of the paper's preconditioner analysis (§VI-B).
// The merge concatenates the disjoint block solutions.
package linsolve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// App is the linear-solver application. It implements core.App and
// core.PICApp.
type App struct {
	// Tolerance is the convergence bound on max |Δx_i|.
	Tolerance float64

	a *linalg.Matrix
	b linalg.Vector
}

// New returns a Jacobi solver for A·x = b. The matrix should be weakly
// diagonally dominant or the iteration may diverge.
func New(a *linalg.Matrix, b linalg.Vector, tolerance float64) *App {
	if a.Rows != a.Cols || a.Rows != len(b) {
		panic(fmt.Sprintf("linsolve: inconsistent system %dx%d with %d-vector", a.Rows, a.Cols, len(b)))
	}
	if tolerance <= 0 {
		panic("linsolve: tolerance must be positive")
	}
	return &App{Tolerance: tolerance, a: a, b: b}
}

// Name implements core.App.
func (a *App) Name() string { return "linsolve" }

// VarKey returns the model key of variable i.
func VarKey(i int) string { return fmt.Sprintf("x%06d", i) }

// rowKey returns the record key of row i.
func rowKey(i int) string { return fmt.Sprintf("row%06d", i) }

// rowValue encodes one row record: {rowIndex, rhs, columnOffset,
// coefficients...}. columnOffset is the global index of the first
// coefficient — the full problem uses 0; sub-problems use their block's
// start.
func rowValue(row int, rhs float64, colOffset int, coeffs []float64) writable.Vector {
	v := make(writable.Vector, 3+len(coeffs))
	v[0] = float64(row)
	v[1] = rhs
	v[2] = float64(colOffset)
	copy(v[3:], coeffs)
	return v
}

// Records converts the app's system into input records, one per row.
func (a *App) Records() []mapred.Record {
	recs := make([]mapred.Record, a.a.Rows)
	for i := 0; i < a.a.Rows; i++ {
		recs[i] = mapred.Record{Key: rowKey(i), Value: rowValue(i, a.b[i], 0, a.a.Row(i))}
	}
	return recs
}

// InitialModel is the zero vector — the arbitrary starting point of the
// iteration.
func InitialModel(n int) *model.Model {
	m := model.New()
	for i := 0; i < n; i++ {
		m.Set(VarKey(i), writable.Float64(0))
	}
	return m
}

// Solution extracts the solution vector from a model.
func Solution(m *model.Model, n int) linalg.Vector {
	x := make(linalg.Vector, n)
	for i := range x {
		if v, ok := m.Float(VarKey(i)); ok {
			x[i] = v
		}
	}
	return x
}

// Iteration implements core.App: one Jacobi sweep as a map-only job
// (each row update is independent given the model).
func (a *App) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	job := &mapred.Job{
		Name: "jacobi-sweep",
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, m *model.Model, emit mapred.Emitter) error {
			val := v.(writable.Vector)
			row := int(val[0])
			rhs := val[1]
			off := int(val[2])
			coeffs := val[3:]
			s := rhs
			var diag float64
			for j, c := range coeffs {
				col := off + j
				if col == row {
					diag = c
					continue
				}
				x, ok := m.Float(VarKey(col))
				if !ok {
					return fmt.Errorf("linsolve: model missing %s", VarKey(col))
				}
				s -= c * x
			}
			if diag == 0 {
				return fmt.Errorf("linsolve: zero diagonal at row %d", row)
			}
			emit.Emit(VarKey(row), writable.Float64(s/diag))
			return nil
		}),
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	next := model.New()
	for _, rec := range out.Records {
		next.Set(rec.Key, rec.Value)
	}
	if next.Len() != m.Len() {
		return nil, fmt.Errorf("linsolve: sweep produced %d variables, model has %d", next.Len(), m.Len())
	}
	return next, nil
}

// Converged implements core.App.
func (a *App) Converged(prev, next *model.Model) bool {
	return model.MaxFloatDelta(prev, next) < a.Tolerance
}

// Partition implements core.PICApp: contiguous variable blocks. Each
// block's rows keep only their in-block coefficients; the contribution
// of out-of-block variables, at their current merged values, is folded
// into the block's right-hand side (block Jacobi).
func (a *App) Partition(_ *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	n := a.a.Rows
	if p > n {
		return nil, fmt.Errorf("linsolve: %d partitions for %d variables", p, n)
	}
	x := Solution(m, n)
	subs := make([]core.SubProblem, p)
	for g := 0; g < p; g++ {
		lo, hi := g*n/p, (g+1)*n/p
		recs := make([]mapred.Record, 0, hi-lo)
		sm := model.New()
		for i := lo; i < hi; i++ {
			rhs := a.b[i]
			row := a.a.Row(i)
			for j := 0; j < n; j++ {
				if j < lo || j >= hi {
					rhs -= row[j] * x[j]
				}
			}
			recs = append(recs, mapred.Record{
				Key:   rowKey(i),
				Value: rowValue(i, rhs, lo, row[lo:hi]),
			})
			sm.Set(VarKey(i), writable.Float64(x[i]))
		}
		subs[g] = core.SubProblem{Records: recs, Model: sm}
	}
	return subs, nil
}

// Merge implements core.PICApp: the blocks are disjoint, so the merged
// model is their concatenation (§III-B: "piece them back together").
func (a *App) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	return core.ConcatModels(parts)
}

// Golden returns the exact solution by direct elimination — the unique
// reference of Figure 12(c).
func (a *App) Golden() (linalg.Vector, error) {
	return a.a.Solve(a.b)
}

// MergeKey implements core.KeyMerger. Variable blocks are disjoint —
// every variable belongs to exactly one block — so the key merge is
// identity with a disjointness check, matching ConcatModels.
func (a *App) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	if len(values) != 1 {
		return nil, fmt.Errorf("linsolve: variable %q in %d blocks, want 1", key, len(values))
	}
	return values[0], nil
}

// MergeKeyWeighted implements core.WeightedKeyMerger: identity merges
// stay identity under pre-combining, so hierarchical rack-level
// pre-merges are exactly as unbiased as the flat merge.
func (a *App) MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("linsolve: bad weighted merge for %q: %d values, %d weights", key, len(values), len(weights))
	}
	for _, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("linsolve: weight %d for %q", w, key)
		}
	}
	return a.MergeKey(key, values)
}

var _ core.WeightedKeyMerger = (*App)(nil)

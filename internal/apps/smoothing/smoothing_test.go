package smoothing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
)

func testRuntime() *core.Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e8,
		NodeBandwidth:      125e6,
		RackBandwidth:      750e6,
		CoreBandwidth:      750e6,
	})
	return core.NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 20})
}

func maxImageDiff(a, b *data.Image) float64 {
	var worst float64
	for y := range a.Rows {
		for x := range a.Rows[y] {
			if d := math.Abs(a.Rows[y][x] - b.Rows[y][x]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestNewValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 4, 0.5, 1e-3) },
		func() { New(4, 0, 0.5, 1e-3) },
		func() { New(4, 4, 0, 1e-3) },
		func() { New(4, 4, 0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOneSweepMatchesReferenceStep(t *testing.T) {
	img := data.NoisyImage(1, 16, 12, 10)
	app := New(16, 12, 0.5, 1e-9)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), 6)
	m1, err := app.Iteration(rt, in, InitialModel(img))
	if err != nil {
		t.Fatal(err)
	}
	oneStep := Reference(img, 0.5, 0, 1) // exactly one sweep
	got := ImageOf(m1, 16, 12)
	if d := maxImageDiff(got, oneStep); d > 1e-12 {
		t.Fatalf("distributed sweep deviates from sequential by %v", d)
	}
}

func TestICConvergesToReference(t *testing.T) {
	img := data.NoisyImage(2, 20, 20, 15)
	app := New(20, 20, 0.5, 1e-6)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), rt.Cluster().MapSlots())
	res, err := core.RunIC(rt, app, in, InitialModel(img), &core.ICOptions{MaxIterations: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("smoothing did not converge")
	}
	want := Reference(img, 0.5, 1e-9, 10000)
	got := ImageOf(res.Model, 20, 20)
	if d := maxImageDiff(got, want); d > 1e-3 {
		t.Fatalf("converged image deviates from reference by %v", d)
	}
}

func TestSmoothingReducesNoise(t *testing.T) {
	img := data.NoisyImage(3, 24, 24, 20)
	smoothed := Reference(img, 0.5, 1e-9, 10000)
	// Total variation (sum of neighbor differences) must drop.
	tv := func(im *data.Image) float64 {
		var s float64
		for y := 0; y < im.Height; y++ {
			for x := 0; x+1 < im.Width; x++ {
				s += math.Abs(im.Rows[y][x+1] - im.Rows[y][x])
			}
		}
		return s
	}
	if tv(smoothed) >= tv(img) {
		t.Fatal("smoothing did not reduce total variation")
	}
}

func TestPartitionBandsWithHalos(t *testing.T) {
	img := data.NoisyImage(4, 8, 12, 5)
	app := New(8, 12, 0.5, 1e-6)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), 6)
	subs, err := app.Partition(in, InitialModel(img), 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for g, sub := range subs {
		rows += len(sub.Records)
		halos := 0
		for _, k := range sub.Model.Keys() {
			if k[:4] == "halo" {
				halos++
			}
		}
		// Interior bands have two halos, edge bands one.
		want := 2
		if g == 0 || g == 2 {
			want = 1
		}
		if halos != want {
			t.Fatalf("band %d has %d halos, want %d", g, halos, want)
		}
	}
	if rows != 12 {
		t.Fatalf("bands cover %d rows", rows)
	}
}

func TestPartitionTooManyBands(t *testing.T) {
	img := data.NoisyImage(5, 4, 4, 5)
	app := New(4, 4, 0.5, 1e-6)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), 4)
	if _, err := app.Partition(in, InitialModel(img), 10); err == nil {
		t.Fatal("p > rows accepted")
	}
}

func TestMergeStitchesBands(t *testing.T) {
	img := data.NoisyImage(6, 8, 9, 5)
	app := New(8, 9, 0.5, 1e-6)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), 6)
	m := InitialModel(img)
	subs, err := app.Partition(in, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	models := modelsOf(subs)
	merged, err := app.Merge(models, nil)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 9 {
		t.Fatalf("merged model has %d rows", merged.Len())
	}
	if !merged.Equal(m) {
		t.Fatal("unmodified partition-merge round trip changed the image")
	}
}

func TestPICConvergesToReference(t *testing.T) {
	img := data.NoisyImage(7, 16, 18, 15)
	app := New(16, 18, 0.5, 1e-6)
	rt := testRuntime()
	in := mapred.NewInput(Records(img), rt.Cluster(), rt.Cluster().MapSlots())
	pic, err := core.RunPIC(rt, app, in, InitialModel(img), core.PICOptions{
		Partitions:         6,
		MaxBEIterations:    200,
		MaxLocalIterations: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pic.TopOffConverged {
		t.Fatal("top-off did not converge")
	}
	want := Reference(img, 0.5, 1e-9, 20000)
	got := ImageOf(pic.Model, 16, 18)
	if d := maxImageDiff(got, want); d > 2e-3 {
		t.Fatalf("PIC image deviates from reference by %v", d)
	}
}

func TestImageOfRoundTrip(t *testing.T) {
	img := data.NoisyImage(8, 6, 5, 3)
	m := InitialModel(img)
	out := ImageOf(m, 6, 5)
	if d := maxImageDiff(img, out); d != 0 {
		t.Fatalf("round trip changed pixels by %v", d)
	}
	// Model rows must be copies.
	row, _ := m.Vector(RowKey(0))
	row[0] = 1e9
	if img.Rows[0][0] == 1e9 {
		t.Fatal("InitialModel shares storage with the image")
	}
}

func modelsOf(subs []core.SubProblem) []*model.Model {
	out := make([]*model.Model, len(subs))
	for i := range subs {
		out[i] = subs[i].Model
	}
	return out
}

// Property: one smoothing sweep is a contraction in the max norm (the
// implicit system is diagonally dominant), so distributed sweeps can
// never diverge.
func TestQuickSweepIsContraction(t *testing.T) {
	f := func(seed int64) bool {
		a := data.NoisyImage(seed, 12, 10, 20)
		b := data.NoisyImage(seed+1000, 12, 10, 20)
		before := maxImageDiff(a, b)
		if before == 0 {
			return true
		}
		// One sweep of each from the same data-fidelity anchor (a's
		// original pixels) — only the current state differs.
		sweepA := Reference(a, 2.0, 0, 1)
		// Reference anchors to its input; to isolate the linear part,
		// apply the same operator by smoothing b's state against b.
		sweepB := Reference(b, 2.0, 0, 1)
		// The affine parts differ by the anchors, so compare the
		// contraction of the difference of states under the linear
		// part: |S(a)-S(b)| ≤ |anchor diff|/(1+µn) + µn/(1+µn)·|a-b|
		// ≤ |a-b| when anchors equal states (as here).
		return maxImageDiff(sweepA, sweepB) <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

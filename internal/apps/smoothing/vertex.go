package smoothing

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// VertexProgram implements core.VertexApp: under the BSP backend one
// Jacobi sweep runs as a native two-superstep vertex program, one
// vertex per image row. Superstep 0: every row sends its current pixels
// to its in-band neighbor rows. Superstep 1: every row blends its
// original pixels with the received neighbor rows — falling back to the
// frozen halo rows of the sub-model at band boundaries — and votes to
// halt. The arithmetic is identical to the map-only sweep, so the two
// backends produce byte-identical models.
func (a *App) VertexProgram(in *mapred.Input, m *model.Model) (bsp.Program, error) {
	p := &smProgram{mu: a.Mu, m: m, byID: make(map[string]*smVertex)}
	for _, split := range in.Splits {
		for _, rec := range split.Records {
			val, ok := rec.Value.(writable.Vector)
			if !ok || len(val) == 0 {
				return nil, fmt.Errorf("smoothing: record %q is not a row", rec.Key)
			}
			y := int(val[0])
			cur, ok := modelRow(m, y)
			if !ok {
				return nil, fmt.Errorf("smoothing: model missing row %d", y)
			}
			v := &smVertex{id: rec.Key, home: split.Home, y: y, orig: val[1:], cur: cur}
			p.verts = append(p.verts, v)
			p.byID[v.id] = v
		}
	}
	return p, nil
}

// smVertex is the per-row state of one sweep's program.
type smVertex struct {
	id   string
	home int
	y    int
	orig writable.Vector // original (noisy) pixels
	cur  writable.Vector // current pixels, from the iteration's model
	out  writable.Vector // smoothed pixels, set in superstep 1
}

type smProgram struct {
	mu    float64
	m     *model.Model // the iteration's (sub-)model, for frozen halos
	verts []*smVertex
	byID  map[string]*smVertex
}

// rowID is the vertex id of row y — the input record key format.
func rowID(y int) string { return fmt.Sprintf("row%06d", y) }

// Vertices implements bsp.Program.
func (p *smProgram) Vertices() []bsp.VertexInfo {
	infos := make([]bsp.VertexInfo, len(p.verts))
	for i, v := range p.verts {
		infos[i] = bsp.VertexInfo{ID: v.id, Home: v.home}
	}
	return infos
}

// Compute implements bsp.Program. Tags name the direction as seen by
// the receiver: a row sends itself downward as the receiver's "up" row.
func (p *smProgram) Compute(step int, id string, msgs []bsp.Message, s bsp.Sender) (bool, error) {
	v, ok := p.byID[id]
	if !ok {
		return false, fmt.Errorf("smoothing: unknown vertex %q", id)
	}
	if step == 0 {
		if _, ok := p.byID[rowID(v.y+1)]; ok {
			s.Send(rowID(v.y+1), "up", v.cur)
		}
		if _, ok := p.byID[rowID(v.y-1)]; ok {
			s.Send(rowID(v.y-1), "down", v.cur)
		}
		return false, nil
	}
	var up, down writable.Vector
	for _, msg := range msgs {
		row, ok := msg.Value.(writable.Vector)
		if !ok {
			return false, fmt.Errorf("smoothing: vertex %q got non-row message %q", id, msg.Tag)
		}
		switch msg.Tag {
		case "up":
			up = row
		case "down":
			down = row
		default:
			return false, fmt.Errorf("smoothing: vertex %q got unknown message tag %q", id, msg.Tag)
		}
	}
	// Band boundaries have no neighbor vertex: read the frozen halo row
	// (or nothing at the image border), exactly as the mapred sweep does.
	if up == nil {
		up, _ = modelRow(p.m, v.y-1)
	}
	if down == nil {
		down, _ = modelRow(p.m, v.y+1)
	}
	cur := v.cur
	out := make(writable.Vector, len(v.orig))
	for x := range v.orig {
		sum, n := 0.0, 0.0
		if up != nil {
			sum += up[x]
			n++
		}
		if down != nil {
			sum += down[x]
			n++
		}
		if x > 0 {
			sum += cur[x-1]
			n++
		}
		if x < len(v.orig)-1 {
			sum += cur[x+1]
			n++
		}
		out[x] = (v.orig[x] + p.mu*sum) / (1 + p.mu*n)
	}
	v.out = out
	return true, nil
}

// Model implements bsp.Modeler, mirroring Iteration's model assembly:
// the smoothed rows, plus the frozen halo rows carried forward.
func (p *smProgram) Model(prev *model.Model) (*model.Model, error) {
	next := model.New()
	for _, v := range p.verts {
		next.Set(RowKey(v.y), v.out)
	}
	prev.Range(func(key string, v writable.Writable) bool {
		if len(key) > 4 && key[:4] == "halo" {
			next.Set(key, v)
		}
		return true
	})
	return next, nil
}

// MergeKey implements core.KeyMerger. Bands are disjoint — every image
// row belongs to exactly one band — so the key merge is identity with a
// disjointness check. Frozen halo keys can legitimately appear in two
// bands (adjacent single-row bands freeze the same out-of-band row);
// the copies are identical, and FinalizeMerge drops them anyway.
func (a *App) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	if len(key) > 4 && key[:4] == "halo" {
		return values[0], nil
	}
	if len(values) != 1 {
		return nil, fmt.Errorf("smoothing: row %q in %d bands, want 1", key, len(values))
	}
	return values[0], nil
}

// MergeKeyWeighted implements core.WeightedKeyMerger: identity merges
// stay identity under pre-combining, so hierarchical rack-level
// pre-merges are exactly as unbiased as the flat merge.
func (a *App) MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("smoothing: bad weighted merge for %q: %d values, %d weights", key, len(values), len(weights))
	}
	for _, w := range weights {
		if w < 1 {
			return nil, fmt.Errorf("smoothing: weight %d for %q", w, key)
		}
	}
	return a.MergeKey(key, values)
}

// FinalizeMerge implements core.MergeFinalizer: the key-merge paths
// combine whole partial models, so the frozen halo rows ride along;
// drop them and validate the stitched image, as Merge does.
func (a *App) FinalizeMerge(merged, _ *model.Model) (*model.Model, error) {
	var halos []string
	merged.Range(func(key string, _ writable.Writable) bool {
		if len(key) > 4 && key[:4] == "halo" {
			halos = append(halos, key)
		}
		return true
	})
	for _, key := range halos {
		merged.Delete(key)
	}
	if merged.Len() != a.Height {
		return nil, fmt.Errorf("smoothing: merged image has %d rows, want %d", merged.Len(), a.Height)
	}
	return merged, nil
}

var _ core.VertexApp = (*App)(nil)
var _ core.WeightedKeyMerger = (*App)(nil)
var _ core.MergeFinalizer = (*App)(nil)

// Package smoothing implements the paper's image-smoothing case study:
// an iterative stencil that denoises an image by repeatedly blending
// each pixel with its 4-neighborhood. The update solves
// (1 + μ·n)·p' = p0 + μ·Σ_neighbors p — a Jacobi iteration on the
// diagonally dominant system (I + μL)p = p0, so it converges to a unique
// smoothed image and has exactly the local dependency structure ("the
// image smoothing algorithm is stencil based and clearly the
// dependencies are local", §VI-B) that PIC exploits.
//
// The model is the current image, one row per model entry — a large
// model, so conventional execution pays heavy model-update traffic
// every iteration. Under PIC the image is split into horizontal bands;
// each band smooths locally against frozen halo rows, and the merge
// stitches the bands back together.
package smoothing

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// App is the image smoother. It implements core.App and core.PICApp.
type App struct {
	// Width and Height describe the image.
	Width, Height int
	// Mu is the smoothing strength (the μ of the implicit system).
	Mu float64
	// Tolerance is the convergence bound on per-row displacement.
	Tolerance float64
	// BEThreshold is the best-effort convergence bound (§III-B allows
	// a looser criterion); it defaults to Tolerance.
	BEThreshold float64
}

// New returns a smoother for width×height images.
func New(width, height int, mu, tolerance float64) *App {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("smoothing: bad shape %dx%d", width, height))
	}
	if mu <= 0 || tolerance <= 0 {
		panic("smoothing: mu and tolerance must be positive")
	}
	return &App{Width: width, Height: height, Mu: mu, Tolerance: tolerance, BEThreshold: tolerance}
}

// Name implements core.App.
func (a *App) Name() string { return "smoothing" }

// RowKey is the model key of current-image row y.
func RowKey(y int) string { return fmt.Sprintf("img%06d", y) }

// haloKey is the sub-model key of a frozen out-of-band row.
func haloKey(y int) string { return fmt.Sprintf("halo%06d", y) }

// origValue encodes an input record: {rowIndex, original pixels...}.
func origValue(y int, pixels linalg.Vector) writable.Vector {
	v := make(writable.Vector, 1+len(pixels))
	v[0] = float64(y)
	copy(v[1:], pixels)
	return v
}

// Records converts the original (noisy) image into input records, one
// per row.
func Records(img *data.Image) []mapred.Record {
	recs := make([]mapred.Record, img.Height)
	for y := 0; y < img.Height; y++ {
		recs[y] = mapred.Record{Key: fmt.Sprintf("row%06d", y), Value: origValue(y, img.Rows[y])}
	}
	return recs
}

// InitialModel starts the iteration from the noisy image itself.
func InitialModel(img *data.Image) *model.Model {
	m := model.New()
	for y := 0; y < img.Height; y++ {
		m.Set(RowKey(y), writable.Vector(img.Rows[y]).Clone())
	}
	return m
}

// ImageOf extracts the current image from a model.
func ImageOf(m *model.Model, width, height int) *data.Image {
	img := data.NewImage(width, height)
	for y := 0; y < height; y++ {
		if row, ok := m.Vector(RowKey(y)); ok {
			copy(img.Rows[y], row)
		}
	}
	return img
}

// modelRow fetches row y from a (sub-)model, accepting both in-band and
// halo entries; ok is false when the row is outside the sub-problem
// entirely (image border or missing halo).
func modelRow(m *model.Model, y int) (writable.Vector, bool) {
	if row, ok := m.Vector(RowKey(y)); ok {
		return row, true
	}
	if row, ok := m.Vector(haloKey(y)); ok {
		return row, true
	}
	return nil, false
}

// Iteration implements core.App: one Jacobi smoothing sweep as a
// map-only job over the original rows.
func (a *App) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	mu := a.Mu
	job := &mapred.Job{
		Name:             "smooth-sweep",
		PartitionedModel: true, // each task reads only its rows + halo
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, m *model.Model, emit mapred.Emitter) error {
			val := v.(writable.Vector)
			y := int(val[0])
			orig := val[1:]
			cur, ok := modelRow(m, y)
			if !ok {
				return fmt.Errorf("smoothing: model missing row %d", y)
			}
			up, hasUp := modelRow(m, y-1)
			down, hasDown := modelRow(m, y+1)
			out := make(writable.Vector, len(orig))
			for x := range orig {
				sum, n := 0.0, 0.0
				if hasUp {
					sum += up[x]
					n++
				}
				if hasDown {
					sum += down[x]
					n++
				}
				if x > 0 {
					sum += cur[x-1]
					n++
				}
				if x < len(orig)-1 {
					sum += cur[x+1]
					n++
				}
				out[x] = (orig[x] + mu*sum) / (1 + mu*n)
			}
			emit.Emit(RowKey(y), out)
			return nil
		}),
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	next := model.New()
	for _, rec := range out.Records {
		next.Set(rec.Key, rec.Value)
	}
	// Carry halo rows forward unchanged so local iterations keep their
	// frozen boundary (they are dropped again at merge time).
	m.Range(func(key string, v writable.Writable) bool {
		if len(key) > 4 && key[:4] == "halo" {
			next.Set(key, v)
		}
		return true
	})
	return next, nil
}

// Converged implements core.App.
func (a *App) Converged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.Tolerance
}

// BEConverged implements core.BEConvergedApp: once halo exchanges stop
// moving the stitched image by more than the (looser) best-effort
// bound, the top-off phase polishes the remaining band boundaries.
func (a *App) BEConverged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.BEThreshold
}

// Partition implements core.PICApp: horizontal bands of rows. Each band
// carries its rows of the current image plus frozen halo copies of the
// rows just outside the band.
func (a *App) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	if p > a.Height {
		return nil, fmt.Errorf("smoothing: %d partitions for %d rows", p, a.Height)
	}
	records := in.Records()
	if len(records) != a.Height {
		return nil, fmt.Errorf("smoothing: input has %d rows, image has %d", len(records), a.Height)
	}
	subs := make([]core.SubProblem, p)
	for g := 0; g < p; g++ {
		lo, hi := g*a.Height/p, (g+1)*a.Height/p
		sm := model.New()
		for y := lo; y < hi; y++ {
			row, ok := m.Vector(RowKey(y))
			if !ok {
				return nil, fmt.Errorf("smoothing: model missing row %d", y)
			}
			sm.Set(RowKey(y), row.Clone())
		}
		for _, y := range []int{lo - 1, hi} {
			if y < 0 || y >= a.Height {
				continue
			}
			row, ok := m.Vector(RowKey(y))
			if !ok {
				return nil, fmt.Errorf("smoothing: model missing halo row %d", y)
			}
			sm.Set(haloKey(y), row.Clone())
		}
		subs[g] = core.SubProblem{Records: records[lo:hi], Model: sm}
	}
	return subs, nil
}

// Merge implements core.PICApp: stitch the bands — the union of their
// in-band rows, dropping halos.
func (a *App) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	merged := model.New()
	for _, part := range parts {
		var err error
		part.Range(func(key string, v writable.Writable) bool {
			if len(key) > 4 && key[:4] == "halo" {
				return true
			}
			if _, dup := merged.Get(key); dup {
				err = fmt.Errorf("smoothing: duplicate row %q across bands", key)
				return false
			}
			merged.Set(key, writable.Clone(v))
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	if merged.Len() != a.Height {
		return nil, fmt.Errorf("smoothing: merged image has %d rows, want %d", merged.Len(), a.Height)
	}
	return merged, nil
}

// Reference smooths the image sequentially until the same convergence
// criterion holds, returning the fixed point the distributed runs are
// compared against.
func Reference(img *data.Image, mu, tolerance float64, maxIters int) *data.Image {
	cur := data.NewImage(img.Width, img.Height)
	for y := range img.Rows {
		copy(cur.Rows[y], img.Rows[y])
	}
	for it := 0; it < maxIters; it++ {
		next := data.NewImage(img.Width, img.Height)
		var worst float64
		for y := 0; y < img.Height; y++ {
			for x := 0; x < img.Width; x++ {
				sum, n := 0.0, 0.0
				if y > 0 {
					sum += cur.Rows[y-1][x]
					n++
				}
				if y < img.Height-1 {
					sum += cur.Rows[y+1][x]
					n++
				}
				if x > 0 {
					sum += cur.Rows[y][x-1]
					n++
				}
				if x < img.Width-1 {
					sum += cur.Rows[y][x+1]
					n++
				}
				next.Rows[y][x] = (img.Rows[y][x] + mu*sum) / (1 + mu*n)
			}
			if d := linalg.Vector(next.Rows[y]).Dist2(cur.Rows[y]); d > worst {
				worst = d
			}
		}
		cur = next
		if worst < tolerance {
			break
		}
	}
	return cur
}

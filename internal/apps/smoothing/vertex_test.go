package smoothing

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/mapred"
	"repro/internal/writable"
)

func bspRuntime(workers int) *core.Runtime {
	rt := testRuntime()
	rt.Engine().Workers = workers
	if err := rt.SetBackend(core.BackendBSP); err != nil {
		panic(err)
	}
	return rt
}

// TestBSPSweepByteIdenticalToMapred: the vertex program replays the
// Jacobi arithmetic without reordering any summation, so the two
// backends must agree byte for byte, not just to rounding.
func TestBSPSweepByteIdenticalToMapred(t *testing.T) {
	img := data.NoisyImage(11, 16, 12, 10)
	run := func(backend core.Backend) []byte {
		app := New(16, 12, 0.5, 1e-9)
		rt := testRuntime()
		if err := rt.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		in := mapred.NewInput(Records(img), rt.Cluster(), 6)
		res, err := core.RunIC(rt, app, in, InitialModel(img), &core.ICOptions{MaxIterations: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil)
	}
	if !bytes.Equal(run(core.BackendMapred), run(core.BackendBSP)) {
		t.Fatal("smoothing model diverges across backends")
	}
}

func TestBSPDeterministicAcrossWorkersAndRepeats(t *testing.T) {
	img := data.NoisyImage(12, 20, 20, 15)
	run := func(workers int) ([]byte, *core.ICResult) {
		app := New(20, 20, 0.5, 1e-9)
		rt := bspRuntime(workers)
		in := mapred.NewInput(Records(img), rt.Cluster(), rt.Cluster().MapSlots())
		res, err := core.RunIC(rt, app, in, InitialModel(img), &core.ICOptions{MaxIterations: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil), res
	}
	base, baseRes := run(1)
	for name, workers := range map[string]int{"workers=8": 8, "repeat": 1} {
		got, gotRes := run(workers)
		if !bytes.Equal(got, base) {
			t.Errorf("%s: BSP model bytes diverge", name)
		}
		if !reflect.DeepEqual(gotRes.Metrics, baseRes.Metrics) {
			t.Errorf("%s: metrics diverge:\n got %+v\nwant %+v", name, gotRes.Metrics, baseRes.Metrics)
		}
	}
}

// TestPICOnBSPHierarchicalMatchesFlat: band keys are disjoint and halo
// rows are dropped by FinalizeMerge, so the rack-tree merge must equal
// the flat gather byte for byte on the BSP backend too.
func TestPICOnBSPHierarchicalMatchesFlat(t *testing.T) {
	img := data.NoisyImage(13, 16, 18, 15)
	run := func(hier bool) []byte {
		app := New(16, 18, 0.5, 1e-6)
		rt := bspRuntime(4)
		in := mapred.NewInput(Records(img), rt.Cluster(), rt.Cluster().MapSlots())
		res, err := core.RunPIC(rt, app, in, InitialModel(img), core.PICOptions{
			Partitions:          6,
			MaxBEIterations:     3,
			MaxLocalIterations:  10,
			MaxTopOffIterations: 5,
			HierarchicalMerge:   hier,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Model.Encode(nil)
	}
	if !bytes.Equal(run(false), run(true)) {
		t.Fatal("hierarchical merge diverges from flat merge on BSP backend")
	}
}

func TestMergeKeyHaloAndRowValidation(t *testing.T) {
	app := New(8, 8, 0.5, 1e-6)
	row := writable.Vector{1, 2, 3}
	// Frozen halo rows may legitimately appear in two adjacent one-row
	// bands; the copies are identical and either is accepted.
	got, err := app.MergeKey("halo000003", []writable.Writable{row, row})
	if err != nil {
		t.Fatalf("MergeKey(halo) = %v", err)
	}
	if !reflect.DeepEqual(got, writable.Writable(row)) {
		t.Fatalf("MergeKey(halo) = %v, want %v", got, row)
	}
	// Image rows are disjoint: duplicates are a partitioning bug.
	if _, err := app.MergeKey(RowKey(3), []writable.Writable{row, row}); err == nil {
		t.Fatal("MergeKey accepted a duplicated image row")
	}
	if _, err := app.MergeKeyWeighted(RowKey(3), []writable.Writable{row}, []int{1, 1}); err == nil {
		t.Fatal("MergeKeyWeighted accepted mismatched weights")
	}
	if _, err := app.MergeKeyWeighted(RowKey(3), []writable.Writable{row}, []int{0}); err == nil {
		t.Fatal("MergeKeyWeighted accepted weight 0")
	}
}

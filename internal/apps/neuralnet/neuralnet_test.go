package neuralnet

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/simcluster"
	"repro/internal/writable"
)

func testRuntime() *core.Runtime {
	cluster := simcluster.New(simcluster.Config{
		Nodes:              6,
		RackSize:           6,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		ComputeRate:        1e8,
		NodeBandwidth:      125e6,
		RackBandwidth:      750e6,
		CoreBandwidth:      750e6,
	})
	return core.NewRuntime(cluster, dfs.Config{Replication: 3, BlockSize: 64 << 20})
}

func TestNewValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { New(0, 2, 2, 0.1, 1e-3) },
		func() { New(2, 0, 2, 0.1, 1e-3) },
		func() { New(2, 2, 0, 0.1, 1e-3) },
		func() { New(2, 2, 2, 0, 1e-3) },
		func() { New(2, 2, 2, 0.1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestInitialModelShapeAndDeterminism(t *testing.T) {
	app := New(4, 3, 2, 0.5, 1e-3)
	m := app.InitialModel(1)
	w1, _ := m.Vector(W1Key)
	w2, _ := m.Vector(W2Key)
	if len(w1) != 3*5 || len(w2) != 2*4 {
		t.Fatalf("weight shapes %d/%d", len(w1), len(w2))
	}
	m2 := app.InitialModel(1)
	if !m.Equal(m2) {
		t.Fatal("same seed produced different weights")
	}
	if m.Equal(app.InitialModel(2)) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestForwardOutputsAreProbabilities(t *testing.T) {
	app := New(3, 4, 2, 0.5, 1e-3)
	m := app.InitialModel(1)
	w1, _ := m.Vector(W1Key)
	w2, _ := m.Vector(W2Key)
	_, out := app.forward(w1, w2, []float64{1, -1, 0.5})
	for k, v := range out {
		if v <= 0 || v >= 1 {
			t.Fatalf("output %d = %v outside (0,1)", k, v)
		}
	}
}

// Gradient check: analytic gradients must match finite differences of
// the squared-error loss.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	app := New(3, 4, 2, 0.5, 1e-3)
	m := app.InitialModel(7)
	w1, _ := m.Vector(W1Key)
	w2, _ := m.Vector(W2Key)
	x := []float64{0.8, -0.3, 0.5}
	label := 1

	loss := func(w1, w2 writable.Vector) float64 {
		_, out := app.forward(w1, w2, x)
		var l float64
		for k, o := range out {
			target := 0.0
			if k == label {
				target = 1.0
			}
			l += 0.5 * (o - target) * (o - target)
		}
		return l
	}

	g1, g2 := app.gradients(w1, w2, x, label)
	const h = 1e-6
	for i := range w1 {
		plus, minus := w1.Clone(), w1.Clone()
		plus[i] += h
		minus[i] -= h
		numeric := (loss(plus, w2) - loss(minus, w2)) / (2 * h)
		if math.Abs(numeric-g1[i]) > 1e-6 {
			t.Fatalf("w1[%d]: analytic %v, numeric %v", i, g1[i], numeric)
		}
	}
	for i := range w2 {
		plus, minus := w2.Clone(), w2.Clone()
		plus[i] += h
		minus[i] -= h
		numeric := (loss(w1, plus) - loss(w1, minus)) / (2 * h)
		if math.Abs(numeric-g2[i]) > 1e-6 {
			t.Fatalf("w2[%d]: analytic %v, numeric %v", i, g2[i], numeric)
		}
	}
}

func xorData() ([]linalg.Vector, []int) {
	vectors := []linalg.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []int{0, 1, 1, 0}
	// Replicate so splits are non-trivial.
	var vs []linalg.Vector
	var ls []int
	for r := 0; r < 8; r++ {
		vs = append(vs, vectors...)
		ls = append(ls, labels...)
	}
	return vs, ls
}

func TestLearnsXOR(t *testing.T) {
	app := New(2, 6, 2, 3.0, 1e-5)
	rt := testRuntime()
	vs, ls := xorData()
	in := mapred.NewInput(Records(vs, ls), rt.Cluster(), 8)
	res, err := core.RunIC(rt, app, in, app.InitialModel(3), &core.ICOptions{MaxIterations: 4000, DisableModelWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := app.ModelError(res.Model, vs, ls); e > 0 {
		t.Fatalf("XOR error %v after %d epochs", e, res.Iterations)
	}
}

func TestEpochReducesLossOnOCR(t *testing.T) {
	app := New(data.OCRDims, 12, data.OCRClasses, 0.8, 1e-6)
	set := data.OCRVectors(5, 200, 0.02, 0.05)
	rt := testRuntime()
	in := mapred.NewInput(Records(set.Vectors, set.Labels), rt.Cluster(), rt.Cluster().MapSlots())
	m := app.InitialModel(9)
	errBefore := app.ModelError(m, set.Vectors, set.Labels)
	res, err := core.RunIC(rt, app, in, m, &core.ICOptions{MaxIterations: 60, DisableModelWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	errAfter := app.ModelError(res.Model, set.Vectors, set.Labels)
	if errAfter >= errBefore {
		t.Fatalf("training error did not fall: %v -> %v", errBefore, errAfter)
	}
}

func TestRecordsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Records did not panic")
		}
	}()
	Records([]linalg.Vector{{1}}, []int{0, 1})
}

func TestIterationErrorOnBrokenModel(t *testing.T) {
	app := New(2, 2, 2, 0.5, 1e-3)
	rt := testRuntime()
	vs, ls := xorData()
	in := mapred.NewInput(Records(vs, ls), rt.Cluster(), 4)
	broken := app.InitialModel(1)
	broken.Delete(W1Key)
	if _, err := app.Iteration(rt, in, broken); err == nil {
		t.Fatal("missing weight block accepted")
	}
}

func TestPartitionAndMerge(t *testing.T) {
	app := New(2, 3, 2, 0.5, 1e-3)
	rt := testRuntime()
	vs, ls := xorData()
	in := mapred.NewInput(Records(vs, ls), rt.Cluster(), 4)
	m := app.InitialModel(1)
	subs, err := app.Partition(in, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range subs {
		total += len(s.Records)
		if !s.Model.Equal(m) {
			t.Fatal("sub-model is not a copy of the original")
		}
	}
	if total != len(vs) {
		t.Fatalf("partitions cover %d records", total)
	}
	merged, err := app.Merge([]*model.Model{m.Clone(), m.Clone()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Equal(m) {
		t.Fatal("average of identical models differs")
	}
}

func TestModelErrorPanicsOnBadSet(t *testing.T) {
	app := New(2, 2, 2, 0.5, 1e-3)
	m := app.InitialModel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty validation set accepted")
		}
	}()
	app.ModelError(m, nil, nil)
}

func TestPICReachesICQualityOnOCR(t *testing.T) {
	app := New(data.OCRDims, 10, data.OCRClasses, 1.0, 5e-5)
	train := data.OCRVectors(5, 300, 0.02, 0.05)
	valid := data.OCRVectors(6, 120, 0.02, 0.05)

	rtIC := testRuntime()
	inIC := mapred.NewInput(Records(train.Vectors, train.Labels), rtIC.Cluster(), rtIC.Cluster().MapSlots())
	icRes, err := core.RunIC(rtIC, app, inIC, app.InitialModel(1), &core.ICOptions{MaxIterations: 150})
	if err != nil {
		t.Fatal(err)
	}

	rtPIC := testRuntime()
	inPIC := mapred.NewInput(Records(train.Vectors, train.Labels), rtPIC.Cluster(), rtPIC.Cluster().MapSlots())
	picRes, err := core.RunPIC(rtPIC, app, inPIC, app.InitialModel(1), core.PICOptions{
		Partitions:          6,
		MaxBEIterations:     8,
		MaxLocalIterations:  150,
		MaxTopOffIterations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}

	icErr := app.ModelError(icRes.Model, valid.Vectors, valid.Labels)
	picErr := app.ModelError(picRes.Model, valid.Vectors, valid.Labels)
	// Figure 12(a): PIC reaches virtually identical model error.
	if picErr > icErr+0.08 {
		t.Fatalf("PIC validation error %v much worse than IC %v", picErr, icErr)
	}
}

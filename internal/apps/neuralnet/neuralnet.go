// Package neuralnet implements the paper's neural-network-training case
// study: a single-hidden-layer perceptron trained with full-batch
// back-propagation on OCR vectors (§V-B used ~210,000 optical character
// recognition training vectors).
//
// Each iteration is one gradient-descent epoch as a MapReduce job: the
// map computation back-propagates one training sample and emits its
// weight gradients; a combiner sums gradients per split; the reduce
// computation produces the batch gradient, which the model update
// applies with the learning rate. Under PIC, the training data is dealt
// into random partitions, each sub-problem trains a copy of the network
// to local convergence, and the merge averages the partial weight
// vectors — the paper's model-replication strategy (and what is now
// called federated averaging).
package neuralnet

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapred"
	"repro/internal/model"
	"repro/internal/writable"
)

// Keys of the two weight blocks in the model.
const (
	W1Key = "w1" // hidden layer: Hidden × (In+1), bias last
	W2Key = "w2" // output layer: Out × (Hidden+1), bias last
)

// App is the neural-network trainer. It implements core.App and
// core.PICApp.
type App struct {
	// In, Hidden, Out are the layer widths.
	In, Hidden, Out int
	// LearningRate scales the batch gradient step.
	LearningRate float64
	// Tolerance is the convergence bound on weight displacement per
	// epoch.
	Tolerance float64
}

// New returns a trainer for an In→Hidden→Out sigmoid network.
func New(in, hidden, out int, learningRate, tolerance float64) *App {
	if in <= 0 || hidden <= 0 || out <= 0 {
		panic(fmt.Sprintf("neuralnet: bad architecture %d-%d-%d", in, hidden, out))
	}
	if learningRate <= 0 || tolerance <= 0 {
		panic("neuralnet: learning rate and tolerance must be positive")
	}
	return &App{In: in, Hidden: hidden, Out: out, LearningRate: learningRate, Tolerance: tolerance}
}

// Name implements core.App.
func (a *App) Name() string { return "neuralnet" }

// InitialModel builds small random starting weights, deterministic in
// the seed.
func (a *App) InitialModel(seed int64) *model.Model {
	rng := rand.New(rand.NewSource(seed))
	w1 := make(writable.Vector, a.Hidden*(a.In+1))
	for i := range w1 {
		w1[i] = (rng.Float64() - 0.5)
	}
	w2 := make(writable.Vector, a.Out*(a.Hidden+1))
	for i := range w2 {
		w2[i] = (rng.Float64() - 0.5)
	}
	m := model.New()
	m.Set(W1Key, w1)
	m.Set(W2Key, w2)
	return m
}

// Records converts labeled vectors into training records: component 0
// is the label, the rest the input.
func Records(vectors []linalg.Vector, labels []int) []mapred.Record {
	if len(vectors) != len(labels) {
		panic(fmt.Sprintf("neuralnet: %d vectors, %d labels", len(vectors), len(labels)))
	}
	recs := make([]mapred.Record, len(vectors))
	for i, v := range vectors {
		val := make(writable.Vector, 1+len(v))
		val[0] = float64(labels[i])
		copy(val[1:], v)
		recs[i] = mapred.Record{Key: fmt.Sprintf("t%06d", i), Value: val}
	}
	return recs
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// forward computes the hidden and output activations.
func (a *App) forward(w1, w2 writable.Vector, x []float64) (hidden, out []float64) {
	hidden = make([]float64, a.Hidden)
	out = make([]float64, a.Out)
	a.forwardInto(w1, w2, x, hidden, out)
	return hidden, out
}

// forwardInto computes the activations into caller-provided buffers of
// length Hidden and Out. Accumulation order — bias first, then inputs in
// ascending index — matches the textbook loop exactly, so results are
// bit-identical; the slice re-slicing just lets the compiler drop the
// inner-loop bounds checks.
func (a *App) forwardInto(w1, w2 writable.Vector, x []float64, hidden, out []float64) {
	in := a.In
	xx := x[:in]
	for j := range hidden {
		row := w1[j*(in+1) : (j+1)*(in+1)]
		s := row[in] // bias
		for i, w := range row[:in] {
			s += w * xx[i]
		}
		hidden[j] = sigmoid(s)
	}
	nh := a.Hidden
	hh := hidden[:nh]
	for k := range out {
		row := w2[k*(nh+1) : (k+1)*(nh+1)]
		s := row[nh] // bias
		for j, w := range row[:nh] {
			s += w * hh[j]
		}
		out[k] = sigmoid(s)
	}
}

// scratch holds the per-sample activation and delta buffers of one
// back-propagation; instances are pooled because every training record
// of every epoch needs the full set and none outlives the call.
type scratch struct {
	hidden, out, deltaOut, deltaHidden []float64
}

var scratchPool = sync.Pool{New: func() any { return &scratch{} }}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// gradients back-propagates one sample, returning the squared-error
// gradients of both weight blocks.
func (a *App) gradients(w1, w2 writable.Vector, x []float64, label int) (g1, g2 writable.Vector) {
	sc := scratchPool.Get().(*scratch)
	sc.hidden = grow(sc.hidden, a.Hidden)
	sc.out = grow(sc.out, a.Out)
	sc.deltaOut = grow(sc.deltaOut, a.Out)
	sc.deltaHidden = grow(sc.deltaHidden, a.Hidden)
	hidden, out, deltaOut, deltaHidden := sc.hidden, sc.out, sc.deltaOut, sc.deltaHidden

	a.forwardInto(w1, w2, x, hidden, out)
	for k := range deltaOut {
		target := 0.0
		if k == label {
			target = 1.0
		}
		deltaOut[k] = (out[k] - target) * out[k] * (1 - out[k])
	}
	// Accumulate the hidden deltas with k outermost so w2 is walked
	// contiguously; each deltaHidden[j] still sums its k terms in
	// ascending order, so the floating-point result is unchanged.
	nh := a.Hidden
	for j := range deltaHidden {
		deltaHidden[j] = 0
	}
	for k := 0; k < a.Out; k++ {
		row := w2[k*(nh+1) : k*(nh+1)+nh]
		dk := deltaOut[k]
		for j, w := range row {
			deltaHidden[j] += dk * w
		}
	}
	for j := range deltaHidden {
		deltaHidden[j] = deltaHidden[j] * hidden[j] * (1 - hidden[j])
	}
	g2 = make(writable.Vector, len(w2))
	hh := hidden[:nh]
	for k := 0; k < a.Out; k++ {
		base := k * (nh + 1)
		g2row := g2[base : base+nh+1]
		dk := deltaOut[k]
		for j, h := range hh {
			g2row[j] = dk * h
		}
		g2row[nh] = dk
	}
	g1 = make(writable.Vector, len(w1))
	in := a.In
	xx := x[:in]
	for j := 0; j < nh; j++ {
		base := j * (in + 1)
		g1row := g1[base : base+in+1]
		dj := deltaHidden[j]
		for i, xi := range xx {
			g1row[i] = dj * xi
		}
		g1row[in] = dj
	}
	scratchPool.Put(sc)
	return g1, g2
}

// vectorSum sums same-length vectors, used as combiner and reducer.
type vectorSum struct{}

func (vectorSum) Reduce(key string, values []writable.Writable, _ *model.Model, emit mapred.Emitter) error {
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec := v.(writable.Vector)
		if len(vec) != len(acc) {
			return fmt.Errorf("neuralnet: gradient length mismatch at %q", key)
		}
		vec = vec[:len(acc)] // bounds-check elimination in the sum loop
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	emit.Emit(key, acc)
	return nil
}

// Iteration implements core.App: one full-batch gradient-descent epoch.
func (a *App) Iteration(rt *core.Runtime, in *mapred.Input, m *model.Model) (*model.Model, error) {
	arch := *a
	job := &mapred.Job{
		Name: "backprop-epoch",
		Mapper: mapred.MapperFunc(func(_ string, v writable.Writable, m *model.Model, emit mapred.Emitter) error {
			val := v.(writable.Vector)
			label := int(val[0])
			x := val[1:]
			w1, ok1 := m.Vector(W1Key)
			w2, ok2 := m.Vector(W2Key)
			if !ok1 || !ok2 {
				return fmt.Errorf("neuralnet: model missing weight blocks")
			}
			g1, g2 := arch.gradients(w1, w2, x, label)
			emit.Emit(W1Key, g1)
			emit.Emit(W2Key, g2)
			return nil
		}),
		Combiner:    vectorSum{},
		Reducer:     vectorSum{},
		NumReducers: 2,
	}
	out, err := rt.RunJob(job, in, m)
	if err != nil {
		return nil, err
	}
	n := float64(in.NumRecords())
	next := m.Clone()
	for _, rec := range out.Records {
		w, ok := next.Vector(rec.Key)
		if !ok {
			return nil, fmt.Errorf("neuralnet: gradient for unknown block %q", rec.Key)
		}
		g := rec.Value.(writable.Vector)
		for i := range w {
			w[i] -= a.LearningRate * g[i] / n
		}
	}
	return next, nil
}

// Converged implements core.App: the largest weight-block displacement
// fell below the tolerance.
func (a *App) Converged(prev, next *model.Model) bool {
	return model.MaxVectorDelta(prev, next) < a.Tolerance
}

// Partition implements core.PICApp: deal the training data randomly and
// replicate the model into every sub-problem.
func (a *App) Partition(in *mapred.Input, m *model.Model, p int) ([]core.SubProblem, error) {
	groups := core.DealRecords(in.Records(), p)
	models := core.CopyModels(m, p)
	subs := make([]core.SubProblem, p)
	for i := range subs {
		subs[i] = core.SubProblem{Records: groups[i], Model: models[i]}
	}
	return subs, nil
}

// Merge implements core.PICApp: average the partial weight vectors.
func (a *App) Merge(parts []*model.Model, _ *model.Model) (*model.Model, error) {
	return core.AverageModels(parts)
}

// Predict returns the class with the highest output activation.
func (a *App) Predict(m *model.Model, x linalg.Vector) int {
	w1, _ := m.Vector(W1Key)
	w2, _ := m.Vector(W2Key)
	_, out := a.forward(w1, w2, x)
	best, bestV := 0, out[0]
	for k, v := range out[1:] {
		if v > bestV {
			best, bestV = k+1, v
		}
	}
	return best
}

// ModelError evaluates the misclassification rate of m on a validation
// set — the paper's Figure 12(a) metric.
func (a *App) ModelError(m *model.Model, vectors []linalg.Vector, labels []int) float64 {
	if len(vectors) == 0 || len(vectors) != len(labels) {
		panic("neuralnet: bad validation set")
	}
	wrong := 0
	for i, v := range vectors {
		if a.Predict(m, v) != labels[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(vectors))
}

// MergeKey implements core.KeyMerger: partial weight blocks are averaged
// per key, so the merge can run as a distributed MapReduce job.
func (a *App) MergeKey(key string, values []writable.Writable) (writable.Writable, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("neuralnet: no values for %q", key)
	}
	acc := values[0].(writable.Vector).Clone()
	for _, v := range values[1:] {
		vec, ok := v.(writable.Vector)
		if !ok || len(vec) != len(acc) {
			return nil, fmt.Errorf("neuralnet: incompatible weight blocks at %q", key)
		}
		for i := range acc {
			acc[i] += vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(len(values))
	}
	return acc, nil
}

// MergeKeyWeighted implements core.WeightedKeyMerger: the
// weights-weighted mean of the partial weight blocks, so rack-level
// pre-averages combine without bias.
func (a *App) MergeKeyWeighted(key string, values []writable.Writable, weights []int) (writable.Writable, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("neuralnet: bad weighted merge for %q: %d values, %d weights", key, len(values), len(weights))
	}
	acc := make(writable.Vector, len(values[0].(writable.Vector)))
	total := 0
	for vi, v := range values {
		vec, ok := v.(writable.Vector)
		if !ok || len(vec) != len(acc) {
			return nil, fmt.Errorf("neuralnet: incompatible weight blocks at %q", key)
		}
		w := weights[vi]
		if w < 1 {
			return nil, fmt.Errorf("neuralnet: weight %d for %q", w, key)
		}
		total += w
		for i := range acc {
			acc[i] += float64(w) * vec[i]
		}
	}
	for i := range acc {
		acc[i] /= float64(total)
	}
	return acc, nil
}

// Package simtime provides the virtual clock and discrete-event engine
// that the cluster simulator runs on. All durations in the simulator are
// expressed in simulated seconds; nothing in this package consults wall
// time, so every simulation is deterministic and reproducible.
package simtime

import "container/heap"

// Time is a point on the simulated clock, in seconds since the start of
// the simulation.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration = Time

// Engine is a discrete-event executor. Events are run in timestamp
// order; events with equal timestamps run in the order they were
// scheduled (FIFO), which keeps simulations deterministic.
type Engine struct {
	now  Time
	next int64
	pq   eventQueue
}

// NewEngine returns an engine with the clock at zero and no pending
// events.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run when the clock reaches t. Scheduling in the
// past panics: discrete-event time only moves forward.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("simtime: event scheduled in the past")
	}
	heap.Push(&e.pq, &event{at: t, seq: e.next, fn: fn})
	e.next++
}

// After schedules fn to run d seconds from now. Negative delays panic.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It reports whether an event was run.
func (e *Engine) Step() bool {
	if e.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue is empty and returns the final
// clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return e.pq.Len() }

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyEngine(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("Run on empty engine returned %v, want 0", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("final time %v, want 3", end)
	}
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestEqualTimestampsAreFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(2.5, func() {
		if e.Now() != 2.5 {
			t.Errorf("Now() = %v inside event at 2.5", e.Now())
		}
	})
	e.Run()
	if e.Now() != 2.5 {
		t.Fatalf("Now() = %v after run, want 2.5", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Fatalf("end = %v, want 99", end)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestPending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("new engine has pending events")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after Step, want 1", e.Pending())
	}
}

// Property: for any set of scheduled times, events fire in sorted order
// and the clock never goes backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := rng.Intn(50) + 1
		times := make([]float64, n)
		var fired []Time
		for i := range times {
			times[i] = rng.Float64() * 100
			tt := Time(times[i])
			e.At(tt, func() { fired = append(fired, tt) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		sort.Float64s(times)
		for i := range fired {
			if float64(fired[i]) != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package obs

import "fmt"

// Cost-model sentinel.
//
// Goodrich et al. (PAPERS.md) bound a MapReduce-style computation by
// its round count and its per-round communication: a simulation of a
// bulk-synchronous algorithm should finish in O(expected) rounds and
// move O(N) bytes per round. The sentinel checks the measured run
// against those bounds scaled by a configurable slack factor, and
// flags a cost-model anomaly when the run escapes them — continuously,
// on every collection, instead of only in ablation tables.

// Sentinel configures the Goodrich-style bound check. The zero value
// disables it.
type Sentinel struct {
	// Factor is the slack multiplier on both bounds; values <= 0
	// disable the sentinel. A run is flagged only when it exceeds
	// Factor times the expected figure, so 1.0 is the tight bound and
	// ~3 a forgiving one.
	Factor float64 `json:"factor"`
	// ExpectedRounds is the round budget the driver planned (e.g.
	// best-effort + top-off iteration caps times jobs per iteration);
	// zero skips the round check.
	ExpectedRounds int `json:"expected_rounds"`
	// BytesPerRound is the O(N) per-round communication constant —
	// callers derive it from the workload's input size; zero skips the
	// communication check.
	BytesPerRound int64 `json:"bytes_per_round"`
}

// sentinelCheck evaluates the bounds against the snapshot's mapred
// counters: framework jobs are the measured rounds, and shuffle
// network bytes plus model bytes are the measured communication.
func sentinelCheck(p *Product) []Anomaly {
	s := p.Opts.Sentinel
	if s.Factor <= 0 {
		return nil
	}
	// Rounds are synchronized framework jobs — the Goodrich model's
	// unit of progress. Best-effort local iterations run unsynchronized
	// inside a round, so they do not count against the bound.
	rounds := counterValue(p.Snapshot, "mapred.jobs")
	var out []Anomaly
	if s.ExpectedRounds > 0 {
		bound := s.Factor * float64(s.ExpectedRounds)
		if rounds > bound {
			out = append(out, Anomaly{
				Kind:     "cost-model-bound",
				Subject:  "rounds",
				Cause:    CauseCostModel,
				Start:    p.Start,
				End:      p.End,
				Severity: rounds / bound,
				Evidence: []string{fmt.Sprintf("measured %.6g rounds > %.6g (factor %.6g x expected %d)",
					rounds, bound, s.Factor, s.ExpectedRounds)},
			})
		}
	}
	if s.BytesPerRound > 0 && rounds > 0 {
		comm := counterValue(p.Snapshot, "mapred.shuffle_network_bytes") + counterValue(p.Snapshot, "mapred.model_bytes")
		bound := s.Factor * rounds * float64(s.BytesPerRound)
		if comm > bound {
			out = append(out, Anomaly{
				Kind:     "cost-model-bound",
				Subject:  "communication",
				Cause:    CauseCostModel,
				Start:    p.Start,
				End:      p.End,
				Severity: comm / bound,
				Evidence: []string{fmt.Sprintf("measured %.6g communication bytes > %.6g (factor %.6g x %.6g rounds x %d B/round)",
					comm, bound, s.Factor, rounds, s.BytesPerRound)},
			})
		}
	}
	return out
}

package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Straggler and anomaly detection.
//
// The detector consumes only deterministic inputs (the start-sorted
// timeline, the metrics snapshot, the scripted network plan) and
// attributes each anomaly to a cause by checking the run's own
// signals, most specific first: a skewed partition explains a slow
// best-effort group better than a co-tenant does, and a scripted
// brownout window overlapping a slow transfer explains it better than
// "unknown". Attribution is best-effort by design — the simulator
// knows the ground truth, which is exactly what makes the heuristics
// testable.

// Cause is the attributed root cause of an anomaly.
type Cause string

const (
	CauseSkewedPartition Cause = "skewed-partition"
	CauseLinkBrownout    Cause = "link-brownout"
	CauseComputeShare    Cause = "node-compute-share"
	CauseCacheCold       Cause = "cache-cold"
	CauseCostModel       Cause = "cost-model-bound"
	CauseUnknown         Cause = "unknown"
)

// Anomaly is one detected deviation with its attributed cause.
type Anomaly struct {
	// Kind classifies the detector that fired: "straggler-group",
	// "slow-transfer" or "cost-model-bound".
	Kind    string       `json:"kind"`
	Subject string       `json:"subject"` // what deviated, e.g. "group 2"
	Cause   Cause        `json:"cause"`
	Start   simtime.Time `json:"start_s"`
	End     simtime.Time `json:"end_s"`
	// Severity is the deviation ratio against the peer baseline
	// (observed / expected, or expected/observed for rates); 1.0 is
	// "not anomalous at all".
	Severity float64  `json:"severity"`
	Evidence []string `json:"evidence,omitempty"`
}

// Render prints the anomaly on one line.
func (a Anomaly) Render() string {
	s := fmt.Sprintf("%s %s cause=%s [%.6gs,%.6gs] sev=%.3g",
		a.Kind, a.Subject, a.Cause, float64(a.Start), float64(a.End), a.Severity)
	if len(a.Evidence) > 0 {
		s += ": " + strings.Join(a.Evidence, "; ")
	}
	return s
}

// detect runs every detector over the product's inputs.
func detect(p *Product) []Anomaly {
	var out []Anomaly
	out = append(out, slowTransfers(p)...)
	out = append(out, slowGroups(p)...)
	return out
}

// transferKinds are the byte-moving span kinds the slow-transfer
// detector baselines against each other.
var transferKinds = map[trace.Kind]bool{
	trace.KindShuffle:   true,
	trace.KindModelDist: true,
	trace.KindTransfer:  true,
}

// slowTransfers flags byte-moving spans whose achieved rate falls
// below SlowTransferFactor of the median rate of their peers (same
// kind and link class), and attributes them to a scripted fault window
// they overlap, if the plan has one.
func slowTransfers(p *Product) []Anomaly {
	type cand struct {
		e    trace.Event
		rate float64
	}
	groups := map[string][]cand{}
	var keys []string
	for _, e := range p.Events {
		if !transferKinds[e.Kind] || e.Bytes <= 0 || e.Duration() <= 0 {
			continue
		}
		key := string(e.Kind)
		if class := attr(e, "class"); class != "" {
			key += "/" + class
		}
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], cand{e, float64(e.Bytes) / float64(e.Duration())})
	}
	sort.Strings(keys)
	var out []Anomaly
	for _, key := range keys {
		cs := groups[key]
		// A median needs peers: with fewer than four spans there is no
		// baseline to deviate from.
		if len(cs) < 4 {
			continue
		}
		rates := make([]float64, len(cs))
		for i, c := range cs {
			rates[i] = c.rate
		}
		sort.Float64s(rates)
		median := rates[len(rates)/2]
		if median <= 0 {
			continue
		}
		for _, c := range cs {
			if c.rate >= p.Opts.SlowTransferFactor*median {
				continue
			}
			a := Anomaly{
				Kind:     "slow-transfer",
				Subject:  fmt.Sprintf("%s %q", key, c.e.Name),
				Cause:    CauseUnknown,
				Start:    c.e.Start,
				End:      c.e.End,
				Severity: median / c.rate,
				Evidence: []string{fmt.Sprintf("rate %.6g B/s vs peer median %.6g B/s over %d peers", c.rate, median, len(cs))},
			}
			if p.Opts.Plan != nil {
				for _, f := range p.Opts.Plan.Faults {
					if f.Start < c.e.End && c.e.Start < f.End {
						a.Cause = CauseLinkBrownout
						a.Evidence = append(a.Evidence, "overlaps fault "+f.Describe())
					}
				}
			}
			out = append(out, a)
		}
	}
	return out
}

// groupSeries holds one best-effort group's busy-time samples keyed by
// the shared sample instant (every group is sampled at the same
// simulated time each iteration, so equal times align iterations
// across groups exactly).
type iterGroup struct {
	group string
	busy  float64
}

// slowGroups flags best-effort groups whose per-iteration busy time
// exceeds SlowGroupFactor of the iteration mean, and attributes each
// straggler: a skewed partition if the group holds an outsized share
// of the records, a co-tenant if compute shares were registered, a
// cold cache if it is the first iteration and misses were staged,
// unknown otherwise.
func slowGroups(p *Product) []Anomaly {
	byTime := map[simtime.Time][]iterGroup{}
	var times []simtime.Time
	for _, m := range p.Snapshot.Metrics {
		if m.Kind != metrics.KindSeries || m.Name != "core.be_group_seconds" {
			continue
		}
		group := labelValue(m, "group")
		for _, s := range m.Samples {
			if _, ok := byTime[s.Time]; !ok {
				times = append(times, s.Time)
			}
			byTime[s.Time] = append(byTime[s.Time], iterGroup{group, s.Value})
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	parts := partitionRecords(p.Snapshot)
	tenantLoad := maxSeriesValue(p.Snapshot, "simcluster.tenant_load")
	cacheMisses := counterValue(p.Snapshot, "cache.misses")

	var out []Anomaly
	for iter, t := range times {
		gs := byTime[t]
		sort.Slice(gs, func(i, j int) bool { return gs[i].group < gs[j].group })
		var sum, busiest float64
		var n int
		for _, g := range gs {
			if g.busy > 0 {
				sum += g.busy
				n++
			}
			if g.busy > busiest {
				busiest = g.busy
			}
		}
		if n < 2 {
			continue
		}
		mean := sum / float64(n)
		if mean <= 0 {
			continue
		}
		for _, g := range gs {
			if g.busy <= p.Opts.SlowGroupFactor*mean {
				continue
			}
			a := Anomaly{
				Kind:     "straggler-group",
				Subject:  "group " + g.group,
				Cause:    CauseUnknown,
				Start:    t - simtime.Time(g.busy),
				End:      t,
				Severity: g.busy / mean,
				Evidence: []string{fmt.Sprintf("iteration %d: busy %.6gs vs group mean %.6gs over %d active groups", iter+1, g.busy, mean, n)},
			}
			if ev, ok := skewEvidence(parts, t, g.group); ok {
				a.Cause = CauseSkewedPartition
				a.Evidence = append(a.Evidence, ev)
			} else if tenantLoad > 0 {
				a.Cause = CauseComputeShare
				a.Evidence = append(a.Evidence, fmt.Sprintf("co-tenant compute load up to %.6g registered on the cluster", tenantLoad))
			} else if iter == 0 && cacheMisses > 0 {
				a.Cause = CauseCacheCold
				a.Evidence = append(a.Evidence, fmt.Sprintf("first best-effort iteration with %.6g loop-cache misses staged", cacheMisses))
			}
			out = append(out, a)
		}
	}
	return out
}

// partRecord is one partition's record count at one sample instant.
type partRecord struct {
	group     string
	partition string
	records   float64
}

// partitionRecords indexes the core.partition_records series by sample
// instant.
func partitionRecords(snap metrics.Snapshot) map[simtime.Time][]partRecord {
	out := map[simtime.Time][]partRecord{}
	for _, m := range snap.Metrics {
		if m.Kind != metrics.KindSeries || m.Name != "core.partition_records" {
			continue
		}
		group := labelValue(m, "group")
		part := labelValue(m, "partition")
		for _, s := range m.Samples {
			out[s.Time] = append(out[s.Time], partRecord{group, part, s.Value})
		}
	}
	for _, ps := range out {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].group != ps[j].group {
				return ps[i].group < ps[j].group
			}
			return ps[i].partition < ps[j].partition
		})
	}
	return out
}

// skewEvidence reports whether the straggling group held a partition
// with an outsized record count at the given instant: its largest
// partition carries more than 1.5x the mean partition size and is the
// run's largest overall.
func skewEvidence(parts map[simtime.Time][]partRecord, t simtime.Time, group string) (string, bool) {
	ps := parts[t]
	if len(ps) < 2 {
		return "", false
	}
	var total, max float64
	var maxPart, maxGroup string
	for _, pr := range ps {
		total += pr.records
		if pr.records > max {
			max, maxPart, maxGroup = pr.records, pr.partition, pr.group
		}
	}
	mean := total / float64(len(ps))
	if maxGroup != group || mean <= 0 || max <= 1.5*mean {
		return "", false
	}
	return fmt.Sprintf("partition %s holds %.6g of %.6g records (mean %.6g across %d partitions)",
		maxPart, max, total, mean, len(ps)), true
}

// labelValue returns the metric's named label value, or "".
func labelValue(m metrics.Metric, key string) string {
	for _, l := range m.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// counterValue returns the value of the unlabeled counter, or 0. An
// unlabeled metric's canonical identity is its bare name.
func counterValue(snap metrics.Snapshot, name string) float64 {
	if m, ok := snap.Get(name); ok {
		return m.Value
	}
	return 0
}

// maxSeriesValue returns the largest sample of the unlabeled series,
// or 0.
func maxSeriesValue(snap metrics.Snapshot, name string) float64 {
	m, ok := snap.Get(name)
	if !ok {
		return 0
	}
	var max float64
	for _, s := range m.Samples {
		if s.Value > max {
			max = s.Value
		}
	}
	return max
}

package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Structured JSONL event log.
//
// The log is the machine-readable form of a telemetry product: one
// JSON object per line, first a header, then every span, window row,
// histogram and anomaly, then a footer with totals. The schema is
// versioned (SchemaVersion) and the field order is fixed by the record
// structs below, so the log is byte-stable: the same product always
// serializes to the same bytes, and a reader can hard-fail on an
// unknown schema instead of misparsing it.

// SchemaVersion identifies the event-log wire format. Bump it when a
// record type changes incompatibly.
const SchemaVersion = "pic.obs/v1"

// Record kinds, in the order they appear in a log.
const (
	RecHeader    = "header"
	RecSpan      = "span"
	RecWindow    = "window"
	RecHistogram = "histogram"
	RecAnomaly   = "anomaly"
	RecFooter    = "footer"
)

type logHeader struct {
	Schema  string  `json:"schema"`
	Kind    string  `json:"kind"`
	Run     string  `json:"run"`
	WindowS float64 `json:"window_s"`
	StartS  float64 `json:"start_s"`
	EndS    float64 `json:"end_s"`
}

type logSpan struct {
	Kind   string   `json:"kind"`
	Seq    int      `json:"seq"`
	Layer  string   `json:"layer"`
	Span   string   `json:"span"`
	Name   string   `json:"name"`
	StartS float64  `json:"start_s"`
	EndS   float64  `json:"end_s"`
	Bytes  int64    `json:"bytes,omitempty"`
	Lane   int      `json:"lane,omitempty"`
	ID     int64    `json:"id,omitempty"`
	Parent int64    `json:"parent,omitempty"`
	Attrs  []string `json:"attrs,omitempty"`
}

type logWindow struct {
	Kind   string  `json:"kind"`
	Seq    int     `json:"seq"`
	Series string  `json:"series"`
	Index  int64   `json:"index"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Last   float64 `json:"last"`
}

// logBucket renders a histogram bucket with its upper bound as a
// string, so the +Inf overflow bucket survives JSON (which has no
// infinity literal).
type logBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

type logHist struct {
	Kind    string      `json:"kind"`
	Seq     int         `json:"seq"`
	Hist    string      `json:"hist"`
	Count   int64       `json:"count"`
	SumS    float64     `json:"sum_s"`
	P50S    float64     `json:"p50_s"`
	P95S    float64     `json:"p95_s"`
	P99S    float64     `json:"p99_s"`
	Buckets []logBucket `json:"buckets"`
}

type logAnomaly struct {
	Kind     string   `json:"kind"`
	Seq      int      `json:"seq"`
	Anomaly  string   `json:"anomaly"`
	Subject  string   `json:"subject"`
	Cause    string   `json:"cause"`
	StartS   float64  `json:"start_s"`
	EndS     float64  `json:"end_s"`
	Severity float64  `json:"severity"`
	Evidence []string `json:"evidence,omitempty"`
}

type logFooter struct {
	Schema     string `json:"schema"`
	Kind       string `json:"kind"`
	Seq        int    `json:"seq"`
	Spans      int    `json:"spans"`
	Windows    int    `json:"windows"`
	Histograms int    `json:"histograms"`
	Anomalies  int    `json:"anomalies"`
}

// formatLE renders a bucket upper bound; the overflow bucket renders
// as "+Inf" (the OpenMetrics spelling).
func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// WriteJSONL serializes the product as the versioned JSONL event log.
func (p *Product) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	seq := 0
	next := func() int { seq++; return seq }
	if err := enc.Encode(logHeader{
		Schema:  SchemaVersion,
		Kind:    RecHeader,
		Run:     p.Name,
		WindowS: float64(p.Opts.Window),
		StartS:  float64(p.Start),
		EndS:    float64(p.End),
	}); err != nil {
		return err
	}
	for _, e := range p.Events {
		var attrs []string
		for _, a := range e.Attrs {
			attrs = append(attrs, a.Key+"="+a.Value)
		}
		if err := enc.Encode(logSpan{
			Kind: RecSpan, Seq: next(), Layer: trace.Layer(e.Kind), Span: string(e.Kind),
			Name: e.Name, StartS: float64(e.Start), EndS: float64(e.End),
			Bytes: e.Bytes, Lane: e.Lane, ID: e.ID, Parent: e.Parent, Attrs: attrs,
		}); err != nil {
			return err
		}
	}
	windows := 0
	for _, ws := range p.Windowed {
		for _, row := range ws.Windows {
			windows++
			if err := enc.Encode(logWindow{
				Kind: RecWindow, Seq: next(), Series: ws.Series, Index: row.Index,
				StartS: float64(row.Start), EndS: float64(row.End),
				Count: row.Count, Sum: row.Sum, Min: row.Min, Max: row.Max, Last: row.Last,
			}); err != nil {
				return err
			}
		}
	}
	for _, h := range p.Histograms {
		var buckets []logBucket
		for _, b := range h.Buckets() {
			buckets = append(buckets, logBucket{LE: formatLE(b.LE), Count: b.Count})
		}
		if err := enc.Encode(logHist{
			Kind: RecHistogram, Seq: next(), Hist: h.Key, Count: h.Count(), SumS: h.Sum(),
			P50S: h.Quantile(0.50), P95S: h.Quantile(0.95), P99S: h.Quantile(0.99),
			Buckets: buckets,
		}); err != nil {
			return err
		}
	}
	for _, a := range p.Anomalies {
		if err := enc.Encode(logAnomaly{
			Kind: RecAnomaly, Seq: next(), Anomaly: a.Kind, Subject: a.Subject,
			Cause: string(a.Cause), StartS: float64(a.Start), EndS: float64(a.End),
			Severity: a.Severity, Evidence: a.Evidence,
		}); err != nil {
			return err
		}
	}
	if err := enc.Encode(logFooter{
		Schema: SchemaVersion, Kind: RecFooter, Seq: next(),
		Spans: len(p.Events), Windows: windows,
		Histograms: len(p.Histograms), Anomalies: len(p.Anomalies),
	}); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateJSONL checks an event log against the golden schema: the
// header leads and names the current schema version, every record kind
// is known with its required fields present, span/window times are
// well-formed, seq numbers are contiguous, and the footer's totals
// match the records that preceded it.
func ValidateJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	counts := map[string]int{}
	sawHeader, sawFooter := false, false
	wantSeq := 1
	for sc.Scan() {
		line++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("obs: log line %d: not JSON: %w", line, err)
		}
		kind, _ := rec["kind"].(string)
		if line == 1 {
			if kind != RecHeader {
				return fmt.Errorf("obs: log line 1: expected header, got %q", kind)
			}
			if schema, _ := rec["schema"].(string); schema != SchemaVersion {
				return fmt.Errorf("obs: log schema %q, want %q", rec["schema"], SchemaVersion)
			}
			sawHeader = true
			continue
		}
		if sawFooter {
			return fmt.Errorf("obs: log line %d: record after footer", line)
		}
		if kind != RecFooter {
			seq, ok := rec["seq"].(float64)
			if !ok || int(seq) != wantSeq {
				return fmt.Errorf("obs: log line %d: seq %v, want %d", line, rec["seq"], wantSeq)
			}
			wantSeq++
		}
		switch kind {
		case RecSpan:
			for _, f := range []string{"layer", "span", "name", "start_s", "end_s"} {
				if _, ok := rec[f]; !ok {
					return fmt.Errorf("obs: log line %d: span missing %q", line, f)
				}
			}
			if rec["end_s"].(float64) < rec["start_s"].(float64) {
				return fmt.Errorf("obs: log line %d: span ends before it starts", line)
			}
		case RecWindow:
			for _, f := range []string{"series", "index", "start_s", "end_s", "count"} {
				if _, ok := rec[f]; !ok {
					return fmt.Errorf("obs: log line %d: window missing %q", line, f)
				}
			}
		case RecHistogram:
			for _, f := range []string{"hist", "count", "p50_s", "p95_s", "p99_s", "buckets"} {
				if _, ok := rec[f]; !ok {
					return fmt.Errorf("obs: log line %d: histogram missing %q", line, f)
				}
			}
		case RecAnomaly:
			for _, f := range []string{"anomaly", "subject", "cause", "severity"} {
				if _, ok := rec[f]; !ok {
					return fmt.Errorf("obs: log line %d: anomaly missing %q", line, f)
				}
			}
		case RecFooter:
			if schema, _ := rec["schema"].(string); schema != SchemaVersion {
				return fmt.Errorf("obs: footer schema %q, want %q", rec["schema"], SchemaVersion)
			}
			for _, f := range []string{"spans", "windows", "histograms", "anomalies"} {
				n, ok := rec[f].(float64)
				if !ok {
					return fmt.Errorf("obs: footer missing %q", f)
				}
				if int(n) != counts[f] {
					return fmt.Errorf("obs: footer claims %d %s, log has %d", int(n), f, counts[f])
				}
			}
			sawFooter = true
			continue
		default:
			return fmt.Errorf("obs: log line %d: unknown record kind %q", line, kind)
		}
		counts[map[string]string{
			RecSpan: "spans", RecWindow: "windows",
			RecHistogram: "histograms", RecAnomaly: "anomalies",
		}[kind]]++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: reading log: %w", err)
	}
	if !sawHeader {
		return fmt.Errorf("obs: log has no header")
	}
	if !sawFooter {
		return fmt.Errorf("obs: log has no footer")
	}
	return nil
}

// Flight-recorder ring.
//
// The ring keeps the tail of the span stream — the most recent
// FlightSize spans, each tagged with its layer and lane — so the live
// inspector (and a post-mortem) can show "what the run was doing right
// before now/the failure" without replaying the whole log.

// FlightEntry is one ring slot.
type FlightEntry struct {
	Layer string
	Kind  trace.Kind
	Name  string
	Start simtime.Time
	End   simtime.Time
	Bytes int64
	Lane  int
}

// Ring is a fixed-capacity flight recorder over span records.
type Ring struct {
	cap     int
	entries []FlightEntry
	dropped int
}

// NewRing returns an empty ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{cap: capacity}
}

// Push appends an entry, evicting the oldest when full.
func (r *Ring) Push(e FlightEntry) {
	if len(r.entries) == r.cap {
		copy(r.entries, r.entries[1:])
		r.entries[len(r.entries)-1] = e
		r.dropped++
		return
	}
	r.entries = append(r.entries, e)
}

// Entries returns the retained entries, oldest first.
func (r *Ring) Entries() []FlightEntry { return r.entries }

// Dropped reports how many entries were evicted.
func (r *Ring) Dropped() int { return r.dropped }

// Render prints the ring newest-last, one line per entry.
func (r *Ring) Render() string {
	var sb strings.Builder
	if r.dropped > 0 {
		fmt.Fprintf(&sb, "flight recorder (last %d spans, %d older dropped):\n", len(r.entries), r.dropped)
	} else {
		fmt.Fprintf(&sb, "flight recorder (%d spans):\n", len(r.entries))
	}
	for _, e := range r.entries {
		fmt.Fprintf(&sb, "  %9.3fs %9.3fs lane %-3d %-10s %-13s %s\n",
			float64(e.Start), float64(e.End), e.Lane, e.Layer, e.Kind, e.Name)
	}
	return sb.String()
}

// buildFlight fills a ring from the start-sorted timeline.
func buildFlight(events []trace.Event, size int) *Ring {
	r := NewRing(size)
	for _, e := range events {
		r.Push(FlightEntry{
			Layer: trace.Layer(e.Kind), Kind: e.Kind, Name: e.Name,
			Start: e.Start, End: e.End, Bytes: e.Bytes, Lane: e.Lane,
		})
	}
	return r
}

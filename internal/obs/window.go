package obs

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Tumbling-window aggregation.
//
// Every series in the metrics registry is re-keyed onto a fixed grid
// of tumbling windows on the simulated clock: window k covers
// [k*W, (k+1)*W). The grid is anchored at simtime zero, so two runs
// that sample the same (time, value) points produce identical windows
// no matter how the samples interleaved with real time — windowing is
// a pure function of the snapshot.

// WindowRow is the aggregate of one series over one tumbling window.
type WindowRow struct {
	Index int64        `json:"index"` // window ordinal: Start == Index*W
	Start simtime.Time `json:"start_s"`
	End   simtime.Time `json:"end_s"`
	Count int64        `json:"count"`
	Sum   float64      `json:"sum"`
	Min   float64      `json:"min"`
	Max   float64      `json:"max"`
	Last  float64      `json:"last"` // final sample in arrival order
}

// Mean reports the window's average sample value.
func (w WindowRow) Mean() float64 {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / float64(w.Count)
}

// WindowedSeries is one registry series reduced to its non-empty
// tumbling windows, in window order.
type WindowedSeries struct {
	Series  string      `json:"series"` // canonical metric identity
	Windows []WindowRow `json:"windows"`
}

// Windows folds a series' samples onto the tumbling grid of the given
// width. Windows with no samples are omitted; rows come out in window
// order. A non-positive width returns nil (windowing disabled).
func Windows(samples []metrics.Sample, width simtime.Duration) []WindowRow {
	if width <= 0 || len(samples) == 0 {
		return nil
	}
	byIndex := map[int64]*WindowRow{}
	order := make([]int64, 0, 8)
	for _, s := range samples {
		idx := int64(s.Time / width)
		// Guard the right edge: float division can land exactly on the
		// boundary; the grid is half-open so t == (k+1)*W belongs to k+1.
		if simtime.Time(idx+1)*width <= s.Time {
			idx++
		}
		row, ok := byIndex[idx]
		if !ok {
			row = &WindowRow{
				Index: idx,
				Start: simtime.Time(idx) * width,
				End:   simtime.Time(idx+1) * width,
				Min:   s.Value,
				Max:   s.Value,
			}
			byIndex[idx] = row
			order = append(order, idx)
		}
		row.Count++
		row.Sum += s.Value
		if s.Value < row.Min {
			row.Min = s.Value
		}
		if s.Value > row.Max {
			row.Max = s.Value
		}
		row.Last = s.Value
	}
	// Series samples are appended in simulated-time order per series,
	// but be defensive: emit in window order regardless of arrival.
	sortInt64s(order)
	out := make([]WindowRow, 0, len(order))
	for _, idx := range order {
		out = append(out, *byIndex[idx])
	}
	return out
}

// windowSnapshot windows every series in the snapshot, in snapshot
// (canonical-identity) order.
func windowSnapshot(snap metrics.Snapshot, width simtime.Duration) []WindowedSeries {
	var out []WindowedSeries
	for _, m := range snap.Metrics {
		if m.Kind != metrics.KindSeries {
			continue
		}
		rows := Windows(m.Samples, width)
		if len(rows) == 0 {
			continue
		}
		out = append(out, WindowedSeries{Series: m.ID(), Windows: rows})
	}
	return out
}

// Render prints the windowed series one row per window.
func (ws WindowedSeries) Render() string {
	var sb strings.Builder
	for _, w := range ws.Windows {
		fmt.Fprintf(&sb, "%s [%.6g,%.6g) n=%d mean=%.6g min=%.6g max=%.6g last=%.6g\n",
			ws.Series, float64(w.Start), float64(w.End), w.Count, w.Mean(), w.Min, w.Max, w.Last)
	}
	return sb.String()
}

func sortInt64s(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// OpenMetrics export.
//
// WriteOpenMetrics renders a product snapshot in the OpenMetrics text
// format, so standard tooling (promtool, scrapers, dashboards) can
// ingest a simulated run. Every family is prefixed "pic_" with dots
// mapped to underscores; counters gain the mandated "_total" sample
// suffix, series export their final value (gauge) plus their sample
// count (counter), and the latency histograms export cumulative
// buckets with the canonical le label, _count and _sum. The render is
// a pure function of the product, in sorted family order, terminated
// by "# EOF" — byte-stable like every other obs artifact.

// sanitizeName maps a registry metric name onto the OpenMetrics
// charset.
func sanitizeName(name string) string {
	var sb strings.Builder
	sb.WriteString("pic_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeLabel escapes a label value per the OpenMetrics ABNF.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderLabels renders {k="v",...} (or "" when empty), preserving the
// registry's sorted label order.
func renderLabels(labels []metrics.Label, extra ...metrics.Label) string {
	all := append(append([]metrics.Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// omFamily is one OpenMetrics metric family: its metadata lines and
// its samples, accumulated before writing so a family with many label
// sets still carries exactly one TYPE line.
type omFamily struct {
	meta    []string
	samples []string
}

// omFamilies accumulates families in first-touch order (the snapshot
// and histogram orders are canonical, so first-touch is deterministic).
type omFamilies struct {
	byName map[string]*omFamily
	order  []string
}

func (f *omFamilies) family(name string, meta ...string) *omFamily {
	if f.byName == nil {
		f.byName = map[string]*omFamily{}
	}
	fam, ok := f.byName[name]
	if !ok {
		fam = &omFamily{meta: meta}
		f.byName[name] = fam
		f.order = append(f.order, name)
	}
	return fam
}

func (f *omFamily) add(format string, args ...any) {
	f.samples = append(f.samples, fmt.Sprintf(format, args...))
}

// WriteOpenMetrics renders the product in OpenMetrics text format.
func (p *Product) WriteOpenMetrics(w io.Writer) error {
	var fams omFamilies
	for _, m := range p.Snapshot.Metrics {
		switch m.Kind {
		case metrics.KindCounter:
			name := sanitizeName(m.Name)
			fams.family(name, "# TYPE "+name+" counter").
				add("%s_total%s %s", name, renderLabels(m.Labels), formatValue(m.Value))
		case metrics.KindGauge:
			name := sanitizeName(m.Name)
			fams.family(name, "# TYPE "+name+" gauge").
				add("%s%s %s", name, renderLabels(m.Labels), formatValue(m.Value))
		case metrics.KindSeries:
			// A series flattens to its final value plus its sample
			// count; the full resolution lives in the JSONL log's
			// window records.
			last := sanitizeName(m.Name) + "_last"
			var v float64
			if n := len(m.Samples); n > 0 {
				v = m.Samples[n-1].Value
			}
			fams.family(last, "# TYPE "+last+" gauge").
				add("%s%s %s", last, renderLabels(m.Labels), formatValue(v))
			count := sanitizeName(m.Name) + "_samples"
			fams.family(count, "# TYPE "+count+" counter").
				add("%s_total%s %d", count, renderLabels(m.Labels), len(m.Samples))
		}
	}
	for _, h := range p.Histograms {
		name, labels := parseHistKey(h.Key)
		famName := sanitizeName(name) + "_seconds"
		fam := fams.family(famName,
			"# TYPE "+famName+" histogram",
			"# UNIT "+famName+" seconds")
		for _, b := range h.CumulativeBuckets() {
			le := metrics.Label{Key: "le", Value: formatLE(b.LE)}
			fam.add("%s_bucket%s %d", famName, renderLabels(labels, le), b.Count)
		}
		fam.add("%s_count%s %d", famName, renderLabels(labels), h.Count())
		fam.add("%s_sum%s %s", famName, renderLabels(labels), formatValue(h.Sum()))
	}
	bw := bufio.NewWriter(w)
	for _, name := range fams.order {
		fam := fams.byName[name]
		for _, line := range fam.meta {
			fmt.Fprintln(bw, line)
		}
		for _, line := range fam.samples {
			fmt.Fprintln(bw, line)
		}
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// parseHistKey splits a canonical histogram key back into name and
// labels.
func parseHistKey(key string) (string, []metrics.Label) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return key, nil
	}
	name := key[:open]
	body := key[open+1 : len(key)-1]
	if body == "" {
		return name, nil
	}
	var labels []metrics.Label
	for _, kv := range strings.Split(body, ",") {
		if eq := strings.IndexByte(kv, '='); eq >= 0 {
			labels = append(labels, metrics.Label{Key: kv[:eq], Value: kv[eq+1:]})
		}
	}
	return name, labels
}

// Package obs is the streaming-telemetry layer of the simulator: it
// turns the raw signals the runtime already emits — trace spans and
// registry metrics, all on the simulated clock — into derived
// telemetry products: tumbling-window series, fixed-bucket latency
// histograms with p50/p95/p99 per phase, per link class and per
// tenant, a straggler/anomaly detector that attributes slow groups and
// transfers to a cause, a Goodrich-style cost-model sentinel, a
// versioned JSONL event log with a flight-recorder ring, and an
// OpenMetrics export.
//
// Everything here is a pure function of (events, snapshot, options):
// obs never consults wall time, never samples the live run, and holds
// no locks of its own. That is the determinism contract — the same
// simulated execution yields byte-identical telemetry regardless of
// worker count, harness parallelism or repetition, because the inputs
// are already byte-identical and the derivations are order-free. With
// no registry attached the runtime skips every obs-feeding sample, so
// a disabled run pays nothing.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Options configures a telemetry collection.
type Options struct {
	// Window is the tumbling-window width on the simulated clock.
	// Zero selects the default (10 simulated seconds); negative
	// disables windowing.
	Window simtime.Duration
	// Plan is the scripted network-fault plan of the run, if any; the
	// anomaly detector uses it to attribute slow transfers to brownout
	// or outage windows.
	Plan *simnet.NetworkPlan
	// Sentinel configures the Goodrich-style cost-model bound check;
	// the zero value disables it.
	Sentinel Sentinel
	// SlowGroupFactor flags a best-effort group as a straggler when its
	// per-iteration busy time exceeds this multiple of the iteration's
	// mean across groups. Zero selects the default 1.5.
	SlowGroupFactor float64
	// SlowTransferFactor flags a transfer-like span when its byte rate
	// falls below this fraction of the median rate of its peers (same
	// kind and link class). Zero selects the default 0.4.
	SlowTransferFactor float64
	// FlightSize caps the flight-recorder ring. Zero selects the
	// default 64.
	FlightSize int
}

func (o Options) withDefaults() Options {
	if o.Window == 0 {
		o.Window = 10
	}
	if o.SlowGroupFactor == 0 {
		o.SlowGroupFactor = 1.5
	}
	if o.SlowTransferFactor == 0 {
		o.SlowTransferFactor = 0.4
	}
	if o.FlightSize == 0 {
		o.FlightSize = 64
	}
	return o
}

// Product is the derived telemetry of one run (or one live prefix of a
// run): the inputs it was computed from plus every derived artifact,
// each in a canonical order.
type Product struct {
	Name       string
	Opts       Options
	Events     []trace.Event // start-sorted
	Snapshot   metrics.Snapshot
	Histograms []*Histogram     // sorted by Key
	Windowed   []WindowedSeries // snapshot order
	Anomalies  []Anomaly        // detection order (deterministic)
	Flight     *Ring            // last FlightSize span records
	Start, End simtime.Time
}

// Collect derives the telemetry product of a finished (or suspended)
// run from its tracer and registry.
func Collect(name string, tr *trace.Tracer, reg *metrics.Registry, opts Options) *Product {
	return CollectEvents(name, tr.Events(), reg.Snapshot(), opts)
}

// CollectEvents is Collect on raw inputs: an event list (any order; a
// stable start-sort is applied to a copy) and a metrics snapshot. The
// live inspector uses it on its incrementally forwarded event copy;
// the post-run path uses it on the tracer's own view. Both produce
// identical bytes for identical inputs.
func CollectEvents(name string, events []trace.Event, snap metrics.Snapshot, opts Options) *Product {
	opts = opts.withDefaults()
	sorted := append([]trace.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	p := &Product{
		Name:     name,
		Opts:     opts,
		Events:   sorted,
		Snapshot: snap,
	}
	for _, e := range sorted {
		if e.End > p.End {
			p.End = e.End
		}
	}
	if len(sorted) > 0 {
		p.Start = sorted[0].Start
	}
	p.Histograms = buildHistograms(sorted)
	if opts.Window > 0 {
		p.Windowed = windowSnapshot(snap, opts.Window)
	}
	p.Anomalies = detect(p)
	p.Anomalies = append(p.Anomalies, sentinelCheck(p)...)
	p.Flight = buildFlight(sorted, opts.FlightSize)
	return p
}

// phaseKinds are the span kinds that feed the per-phase latency
// histograms: the job phases plus the job totals and the byte-moving
// spans around them.
var phaseKinds = map[trace.Kind]bool{
	trace.KindJob:        true,
	trace.KindLocalJob:   true,
	trace.KindOverhead:   true,
	trace.KindModelDist:  true,
	trace.KindMap:        true,
	trace.KindShuffle:    true,
	trace.KindReduce:     true,
	trace.KindModelWrite: true,
	trace.KindTransfer:   true,
}

// buildHistograms folds the timeline into the fixed-bucket latency
// histograms: per phase (span kind), per link class (spans carrying a
// class attribute) and per tenant (scheduler spans carrying a tenant
// attribute).
func buildHistograms(events []trace.Event) []*Histogram {
	set := newHistSet()
	for _, e := range events {
		d := float64(e.Duration())
		if phaseKinds[e.Kind] {
			set.observe(histKey("obs.latency", "phase", string(e.Kind)), d)
		}
		if class := attr(e, "class"); class != "" {
			set.observe(histKey("obs.latency", "link", class), d)
		}
		if tenant := attr(e, "tenant"); tenant != "" {
			switch e.Kind {
			case trace.KindSchedJob:
				set.observe(histKey("obs.latency", "tenant", tenant), d)
			case trace.KindSchedWait:
				set.observe(histKey("obs.sched_wait", "tenant", tenant), d)
			}
		}
	}
	return set.sorted()
}

// attr returns the value of the event's named attribute, or "".
func attr(e trace.Event, key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Hist returns the histogram under the given canonical key, if
// present.
func (p *Product) Hist(key string) (*Histogram, bool) {
	for _, h := range p.Histograms {
		if h.Key == key {
			return h, true
		}
	}
	return nil, false
}

// Render prints the product's health rollup: timeline extent, span
// counts per layer, the latency histograms, and any anomalies — the
// summary the live inspector repaints and the report appends.
func (p *Product) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== telemetry: %s ==\n", p.Name)
	fmt.Fprintf(&sb, "extent: [%.6gs, %.6gs]  spans: %d  window: %.6gs\n",
		float64(p.Start), float64(p.End), len(p.Events), float64(p.Opts.Window))
	byLayer := map[string]int{}
	for _, e := range p.Events {
		byLayer[trace.Layer(e.Kind)]++
	}
	layers := make([]string, 0, len(byLayer))
	for l := range byLayer {
		layers = append(layers, l)
	}
	sort.Strings(layers)
	for _, l := range layers {
		fmt.Fprintf(&sb, "  layer %-10s %d spans\n", l, byLayer[l])
	}
	if len(p.Histograms) > 0 {
		sb.WriteString("latency:\n")
		for _, h := range p.Histograms {
			fmt.Fprintf(&sb, "  %s\n", h.Render())
		}
	}
	if len(p.Anomalies) == 0 {
		sb.WriteString("anomalies: none\n")
	} else {
		fmt.Fprintf(&sb, "anomalies: %d\n", len(p.Anomalies))
		for _, a := range p.Anomalies {
			fmt.Fprintf(&sb, "  %s\n", a.Render())
		}
	}
	return sb.String()
}

package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency histograms.
//
// Every histogram in the telemetry layer shares one fixed bucket
// layout: log2-spaced boundaries over simulated seconds, from 2^-14
// (~61 µs, far below any single job phase) to 2^14 (~4.5 h, far above
// any experiment). Fixed buckets are what makes the telemetry
// mergeable and byte-identical across runs: there is no data-dependent
// bucket fitting, so two runs that observe the same durations render
// the same counts, and quantile estimates depend only on the counts.

// histBounds are the inclusive upper bounds of the finite buckets, in
// simulated seconds. Observations above the last bound land in the
// +Inf overflow bucket.
var histBounds = func() []float64 {
	const lo, hi = -14, 14
	b := make([]float64, 0, hi-lo+1)
	for e := lo; e <= hi; e++ {
		b = append(b, math.Pow(2, float64(e)))
	}
	return b
}()

// Histogram is a fixed-bucket latency distribution. The zero value is
// unusable; use NewHistogram. Key is the histogram's canonical
// identity (metrics-style, e.g. "obs.latency{phase=map}") and fixes
// its position in every rendered artifact.
type Histogram struct {
	Key    string
	counts []int64 // len(histBounds)+1; last is the +Inf overflow bucket
	sum    float64
	n      int64
	min    float64
	max    float64
}

// NewHistogram returns an empty histogram under the given canonical
// key.
func NewHistogram(key string) *Histogram {
	return &Histogram{Key: key, counts: make([]int64, len(histBounds)+1)}
}

// Observe records one duration, in simulated seconds. Negative
// observations clamp to zero (they cannot occur on the simulated
// clock, but the histogram must not corrupt its counts if they did).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(histBounds, v)
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the total of all observations, in simulated seconds.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket that holds the target rank, clamped
// to the observed min/max so a wide bucket cannot report a value
// outside the data. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := h.max
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			v := lo + (hi-lo)*(rank-cum)/float64(c)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// Buckets returns the non-empty buckets as (upper-bound, count) pairs
// in bound order; the overflow bucket reports +Inf. Counts are
// per-bucket, not cumulative.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := math.Inf(1)
		if i < len(histBounds) {
			le = histBounds[i]
		}
		out = append(out, BucketCount{LE: le, Count: c})
	}
	return out
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// CumulativeBuckets returns every finite bucket plus +Inf with
// cumulative counts — the OpenMetrics wire shape.
func (h *Histogram) CumulativeBuckets() []BucketCount {
	out := make([]BucketCount, 0, len(h.counts))
	var cum int64
	for i, c := range h.counts {
		cum += c
		le := math.Inf(1)
		if i < len(histBounds) {
			le = histBounds[i]
		}
		out = append(out, BucketCount{LE: le, Count: cum})
	}
	return out
}

// Render prints the histogram as one summary line:
// key, count and the p50/p95/p99 estimates.
func (h *Histogram) Render() string {
	return fmt.Sprintf("%s n=%d p50=%.6gs p95=%.6gs p99=%.6gs",
		h.Key, h.n, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
}

// histSet accumulates histograms keyed by canonical identity and
// returns them in sorted-key order, so every artifact renders them
// identically regardless of observation order.
type histSet struct {
	byKey map[string]*Histogram
}

func newHistSet() *histSet { return &histSet{byKey: map[string]*Histogram{}} }

func (s *histSet) observe(key string, v float64) {
	h, ok := s.byKey[key]
	if !ok {
		h = NewHistogram(key)
		s.byKey[key] = h
	}
	h.Observe(v)
}

func (s *histSet) sorted() []*Histogram {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Histogram, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// histKey builds a metrics-style canonical histogram identity:
// name{k=v} with the single label pre-sorted by construction.
func histKey(name, labelKey, labelValue string) string {
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	sb.WriteString(labelKey)
	sb.WriteByte('=')
	sb.WriteString(labelValue)
	sb.WriteByte('}')
	return sb.String()
}

package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("obs.latency{phase=map}")
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 108 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	// Quantile extremes clamp to the observed min/max, never to bucket
	// bounds.
	if got := h.Quantile(0); got != 0.5 {
		t.Fatalf("p0 = %g, want observed min 0.5", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %g, want observed max 100", got)
	}
	// Quantiles are monotone in q and stay inside [min, max].
	prev := -1.0
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: p%g = %g < %g", q*100, v, prev)
		}
		if v < 0.5 || v > 100 {
			t.Fatalf("p%g = %g escapes [0.5, 100]", q*100, v)
		}
		prev = v
	}
	// Negative observations clamp to zero instead of corrupting counts.
	h.Observe(-3)
	if h.Count() != 6 || h.Quantile(0) != 0 {
		t.Fatalf("negative observe: count %d min %g", h.Count(), h.Quantile(0))
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("k")
	h.Observe(0.7)     // lands in the le=1 bucket
	h.Observe(0.9)     // same bucket
	h.Observe(3)       // le=4
	h.Observe(1 << 20) // beyond the last bound: +Inf overflow

	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("non-empty buckets = %d: %+v", len(bs), bs)
	}
	if bs[0].LE != 1 || bs[0].Count != 2 {
		t.Fatalf("first bucket = %+v", bs[0])
	}
	if bs[1].LE != 4 || bs[1].Count != 1 {
		t.Fatalf("second bucket = %+v", bs[1])
	}
	if !math.IsInf(bs[2].LE, 1) || bs[2].Count != 1 {
		t.Fatalf("overflow bucket = %+v", bs[2])
	}

	// The cumulative view is monotone, covers every bound, and ends at
	// +Inf with the total count — the OpenMetrics contract.
	cum := h.CumulativeBuckets()
	var last int64 = -1
	for _, b := range cum {
		if b.Count < last {
			t.Fatalf("cumulative counts not monotone: %+v", cum)
		}
		last = b.Count
	}
	tail := cum[len(cum)-1]
	if !math.IsInf(tail.LE, 1) || tail.Count != h.Count() {
		t.Fatalf("cumulative tail = %+v, want +Inf/%d", tail, h.Count())
	}
}

func TestWindows(t *testing.T) {
	samples := []metrics.Sample{
		{Time: 1, Value: 5},
		{Time: 9.5, Value: 7},
		{Time: 10, Value: 1}, // exactly on the boundary: belongs to window 1
		{Time: 35, Value: 2},
	}
	rows := Windows(samples, 10)
	if len(rows) != 3 {
		t.Fatalf("windows = %d: %+v", len(rows), rows)
	}
	w0 := rows[0]
	if w0.Index != 0 || w0.Start != 0 || w0.End != 10 || w0.Count != 2 || w0.Sum != 12 ||
		w0.Min != 5 || w0.Max != 7 || w0.Last != 7 || w0.Mean() != 6 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if rows[1].Index != 1 || rows[1].Count != 1 || rows[1].Last != 1 {
		t.Fatalf("boundary sample landed wrong: %+v", rows[1])
	}
	if rows[2].Index != 3 || rows[2].Start != 30 {
		t.Fatalf("sparse window = %+v", rows[2])
	}
	if Windows(samples, 0) != nil || Windows(nil, 10) != nil {
		t.Fatal("degenerate inputs should window to nil")
	}
}

// testProduct builds a small synthetic product exercising every record
// kind: spans with attributes, windowed series, histograms, and an
// anomaly (via the sentinel).
func testProduct() *Product {
	tr := trace.New()
	jobID := tr.NextID()
	tr.Record(trace.Event{Kind: trace.KindJob, Name: "iter-0", Start: 0, End: 4, ID: jobID})
	tr.Record(trace.Event{Kind: trace.KindMap, Name: "iter-0/map", Start: 0, End: 2, Parent: jobID})
	tr.Record(trace.Event{Kind: trace.KindShuffle, Name: "iter-0/shuffle", Start: 2, End: 3, Bytes: 1 << 20,
		Parent: jobID, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}})
	tr.Record(trace.Event{Kind: trace.KindSchedJob, Name: "job a", Start: 0, End: 4,
		Attrs: []trace.Attr{{Key: "tenant", Value: "batch"}}})

	reg := metrics.New()
	reg.Counter("mapred.jobs").Add(9)
	reg.Series("core.be_delta").Sample(3, 0.5)
	reg.Series("core.be_delta").Sample(14, 0.25)

	return Collect("synthetic", tr, reg, Options{
		Window: 10,
		// ExpectedRounds 2 at factor 1 means the 9 recorded jobs breach
		// the bound, so the product carries a sentinel anomaly.
		Sentinel: Sentinel{Factor: 1, ExpectedRounds: 2},
	})
}

func TestCollectBuildsLabeledHistograms(t *testing.T) {
	p := testProduct()
	for _, key := range []string{
		"obs.latency{phase=job}",
		"obs.latency{phase=map}",
		"obs.latency{phase=shuffle}",
		"obs.latency{link=cross-rack}",
		"obs.latency{tenant=batch}",
	} {
		if _, ok := p.Hist(key); !ok {
			t.Fatalf("missing histogram %q (have %d)", key, len(p.Histograms))
		}
	}
	if p.Start != 0 || p.End != 4 {
		t.Fatalf("extent = [%g, %g]", float64(p.Start), float64(p.End))
	}
	if len(p.Windowed) == 0 || p.Windowed[0].Series != "core.be_delta" {
		t.Fatalf("windowed = %+v", p.Windowed)
	}
}

func TestCollectEventsOrderInvariance(t *testing.T) {
	// Distinct start times (the stable sort keeps ties in arrival order
	// by design — the runtime's arrival order is itself deterministic).
	events := []trace.Event{
		{Kind: trace.KindJob, Name: "iter-0", Start: 0, End: 4, ID: 1},
		{Kind: trace.KindMap, Name: "iter-0/map", Start: 0.5, End: 2, Parent: 1},
		{Kind: trace.KindShuffle, Name: "iter-0/shuffle", Start: 2, End: 3, Bytes: 1 << 20,
			Parent: 1, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
		{Kind: trace.KindModelWrite, Name: "model", Start: 3, End: 4, Bytes: 4096},
	}
	snap := metrics.Snapshot{}
	p := CollectEvents("order", events, snap, Options{Window: 10})
	// Feed the same events reversed: the live inspector sees arrival
	// order, the post-run path sees start order; bytes must not differ.
	rev := make([]trace.Event, len(events))
	for i, e := range events {
		rev[len(rev)-1-i] = e
	}
	q := CollectEvents("order", rev, snap, Options{Window: 10})

	var a, b bytes.Buffer
	if err := p.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL differs across event arrival orders")
	}
	a.Reset()
	b.Reset()
	if err := p.WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := q.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("OpenMetrics differs across event arrival orders")
	}
	if p.Render() != q.Render() {
		t.Fatal("render differs across event arrival orders")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	p := testProduct()
	var buf bytes.Buffer
	if err := p.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("own log fails validation: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	corrupt := func(name string, mutate func([]string) []string) {
		t.Helper()
		mutated := mutate(append([]string(nil), lines...))
		err := ValidateJSONL(strings.NewReader(strings.Join(mutated, "\n") + "\n"))
		if err == nil {
			t.Fatalf("%s: validator accepted a corrupt log", name)
		}
	}
	corrupt("wrong schema", func(ls []string) []string {
		ls[0] = strings.Replace(ls[0], SchemaVersion, "pic.obs/v999", 1)
		return ls
	})
	corrupt("seq gap", func(ls []string) []string {
		return append(ls[:1], ls[2:]...) // drop the first span: seq starts at 2
	})
	corrupt("missing footer", func(ls []string) []string {
		return ls[:len(ls)-1]
	})
	corrupt("record after footer", func(ls []string) []string {
		return append(ls, ls[1])
	})
	corrupt("footer totals drift", func(ls []string) []string {
		ls[len(ls)-1] = strings.Replace(ls[len(ls)-1], `"spans":`, `"spans":9`, 1)
		return ls
	})
	corrupt("not JSON", func(ls []string) []string {
		ls[1] = "{broken"
		return ls
	})
	if err := ValidateJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty log validated")
	}
}

func TestOpenMetricsShape(t *testing.T) {
	p := testProduct()
	var buf bytes.Buffer
	if err := p.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("output does not end with # EOF:\n%s", out)
	}
	// Exactly one TYPE line per family, and every sample line belongs to
	// the family most recently declared — the OpenMetrics grouping rule.
	types := map[string]bool{}
	current := ""
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if types[fam] {
				t.Fatalf("family %s declared twice", fam)
			}
			types[fam] = true
			current = fam
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, current) {
			t.Fatalf("sample %q outside its family block (%s)", line, current)
		}
	}
	if !strings.Contains(out, "pic_mapred_jobs_total 9") {
		t.Fatalf("counter missing _total sample:\n%s", out)
	}
	if !strings.Contains(out, "# UNIT pic_obs_latency_seconds seconds") {
		t.Fatalf("histogram missing UNIT line:\n%s", out)
	}
	if !strings.Contains(out, `pic_obs_latency_seconds_bucket{phase="map",le="+Inf"}`) {
		t.Fatalf("histogram missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "pic_core_be_delta_last 0.25") {
		t.Fatalf("series missing _last gauge:\n%s", out)
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(FlightEntry{Name: string(rune('a' + i)), Start: simtime.Time(i)})
	}
	es := r.Entries()
	if len(es) != 3 || r.Dropped() != 2 {
		t.Fatalf("entries = %d dropped = %d", len(es), r.Dropped())
	}
	if es[0].Name != "c" || es[2].Name != "e" {
		t.Fatalf("ring kept wrong tail: %+v", es)
	}
	if !strings.Contains(r.Render(), "2 older dropped") {
		t.Fatalf("render: %s", r.Render())
	}
}

func TestSentinelBounds(t *testing.T) {
	reg := metrics.New()
	reg.Counter("mapred.jobs").Add(30)
	reg.Counter("mapred.shuffle_network_bytes").Add(5e9)
	reg.Counter("mapred.model_bytes").Add(1e9)
	snap := reg.Snapshot()

	collect := func(s Sentinel) []Anomaly {
		p := CollectEvents("s", nil, snap, Options{Sentinel: s})
		return p.Anomalies
	}
	// Healthy bounds: quiet.
	if as := collect(Sentinel{Factor: 4, ExpectedRounds: 10, BytesPerRound: 1e9}); len(as) != 0 {
		t.Fatalf("healthy run flagged: %+v", as)
	}
	// Round bound breached: 30 rounds > 2 × 10.
	as := collect(Sentinel{Factor: 2, ExpectedRounds: 10})
	if len(as) != 1 || as[0].Subject != "rounds" || as[0].Cause != CauseCostModel {
		t.Fatalf("round breach = %+v", as)
	}
	if as[0].Severity != 1.5 {
		t.Fatalf("round severity = %g", as[0].Severity)
	}
	// Communication bound breached: 6e9 bytes > 2 × 30 rounds × 1e7.
	as = collect(Sentinel{Factor: 2, BytesPerRound: 1e7})
	if len(as) != 1 || as[0].Subject != "communication" || as[0].Cause != CauseCostModel {
		t.Fatalf("communication breach = %+v", as)
	}
	// Factor 0 disables everything.
	if as := collect(Sentinel{ExpectedRounds: 1, BytesPerRound: 1}); len(as) != 0 {
		t.Fatalf("disabled sentinel fired: %+v", as)
	}
}

func TestSlowTransferAttribution(t *testing.T) {
	// Five shuffles of the same link class: four at 1 MB/s, one at a
	// tenth of that. The slow one overlaps a scripted brownout window.
	events := []trace.Event{
		{Kind: trace.KindShuffle, Name: "s0", Start: 0, End: 1, Bytes: 1 << 20, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
		{Kind: trace.KindShuffle, Name: "s1", Start: 1, End: 2, Bytes: 1 << 20, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
		{Kind: trace.KindShuffle, Name: "s2", Start: 2, End: 3, Bytes: 1 << 20, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
		{Kind: trace.KindShuffle, Name: "s3", Start: 3, End: 4, Bytes: 1 << 20, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
		{Kind: trace.KindShuffle, Name: "slow", Start: 4, End: 14, Bytes: 1 << 20, Attrs: []trace.Attr{{Key: "class", Value: "cross-rack"}}},
	}
	plan := &simnet.NetworkPlan{Faults: []simnet.NetFault{
		{Kind: simnet.FaultCore, Start: 5, End: 9, Factor: 0.05},
	}}
	p := CollectEvents("t", events, metrics.Snapshot{}, Options{Plan: plan})
	if len(p.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v", p.Anomalies)
	}
	a := p.Anomalies[0]
	if a.Kind != "slow-transfer" || a.Cause != CauseLinkBrownout {
		t.Fatalf("anomaly = %+v", a)
	}
	if !strings.Contains(strings.Join(a.Evidence, ";"), "overlaps fault") {
		t.Fatalf("evidence lacks fault overlap: %+v", a.Evidence)
	}
	if a.Severity < 9 || a.Severity > 11 { // 10× below the peer median
		t.Fatalf("severity = %g", a.Severity)
	}

	// Without a plan (or with a non-overlapping window) the cause stays
	// unknown — attribution never invents a fault.
	p = CollectEvents("t", events, metrics.Snapshot{}, Options{
		Plan: &simnet.NetworkPlan{Faults: []simnet.NetFault{{Kind: simnet.FaultCore, Start: 100, End: 200}}},
	})
	if len(p.Anomalies) != 1 || p.Anomalies[0].Cause != CauseUnknown {
		t.Fatalf("non-overlapping plan: %+v", p.Anomalies)
	}

	// Three peers are too few for a baseline: no anomaly at all.
	p = CollectEvents("t", events[2:], metrics.Snapshot{}, Options{Plan: plan})
	if len(p.Anomalies) != 0 {
		t.Fatalf("flagged without enough peers: %+v", p.Anomalies)
	}
}

// sampleGroups records one best-effort iteration's busy seconds for
// groups 0..n-1 at the shared instant t.
func sampleGroups(reg *metrics.Registry, t simtime.Time, busy ...float64) {
	for g, b := range busy {
		reg.Series("core.be_group_seconds", metrics.L("group", string(rune('0'+g)))...).Sample(t, b)
	}
}

func TestStragglerSkewAttribution(t *testing.T) {
	reg := metrics.New()
	// Iteration at t=10: group 0 is three times busier than its peers,
	// and it owns partition 0, which holds 80% of the records.
	sampleGroups(reg, 10, 6, 2, 2)
	for part, rec := range map[string]float64{"0": 8000, "1": 1000, "2": 1000} {
		group := "0"
		if part != "0" {
			group = part
		}
		reg.Series("core.partition_records", metrics.L("group", group, "partition", part)...).Sample(10, rec)
	}
	p := CollectEvents("skew", nil, reg.Snapshot(), Options{})
	if len(p.Anomalies) != 1 {
		t.Fatalf("anomalies = %+v", p.Anomalies)
	}
	a := p.Anomalies[0]
	if a.Kind != "straggler-group" || a.Subject != "group 0" || a.Cause != CauseSkewedPartition {
		t.Fatalf("anomaly = %+v", a)
	}
	if math.Abs(a.Severity-1.8) > 1e-9 { // 6 / mean(6,2,2)
		t.Fatalf("severity = %g", a.Severity)
	}
	if !strings.Contains(strings.Join(a.Evidence, ";"), "partition 0 holds 8000") {
		t.Fatalf("evidence = %+v", a.Evidence)
	}
}

func TestStragglerTenantAndCacheAttribution(t *testing.T) {
	// A straggler with co-tenant load registered attributes to the
	// compute share.
	reg := metrics.New()
	sampleGroups(reg, 10, 9, 3, 3)
	reg.Series("simcluster.tenant_load").Sample(5, 0.75)
	p := CollectEvents("tenant", nil, reg.Snapshot(), Options{})
	if len(p.Anomalies) != 1 || p.Anomalies[0].Cause != CauseComputeShare {
		t.Fatalf("tenant attribution = %+v", p.Anomalies)
	}

	// First-iteration straggler with loop-cache misses staged: cold
	// cache. On a later iteration the same signal no longer applies.
	reg = metrics.New()
	sampleGroups(reg, 10, 9, 3, 3)
	sampleGroups(reg, 20, 3, 9, 3)
	reg.Counter("cache.misses").Add(12)
	p = CollectEvents("cold", nil, reg.Snapshot(), Options{})
	if len(p.Anomalies) != 2 {
		t.Fatalf("anomalies = %+v", p.Anomalies)
	}
	if p.Anomalies[0].Cause != CauseCacheCold {
		t.Fatalf("first iteration = %+v", p.Anomalies[0])
	}
	if p.Anomalies[1].Cause != CauseUnknown {
		t.Fatalf("second iteration = %+v", p.Anomalies[1])
	}

	// A single active group has no peers to deviate from.
	reg = metrics.New()
	sampleGroups(reg, 10, 9)
	if p := CollectEvents("solo", nil, reg.Snapshot(), Options{}); len(p.Anomalies) != 0 {
		t.Fatalf("solo group flagged: %+v", p.Anomalies)
	}
}

func TestFlightRecorderTail(t *testing.T) {
	p := testProduct()
	if got := len(p.Flight.Entries()); got != len(p.Events) {
		t.Fatalf("flight entries = %d, events = %d", got, len(p.Events))
	}
	small := CollectEvents(p.Name, p.Events, p.Snapshot, Options{FlightSize: 2})
	es := small.Flight.Entries()
	if len(es) != 2 || small.Flight.Dropped() != len(p.Events)-2 {
		t.Fatalf("capped flight = %d entries, %d dropped", len(es), small.Flight.Dropped())
	}
	// The ring keeps the *latest* spans of the start-sorted timeline.
	if es[len(es)-1].Name != p.Events[len(p.Events)-1].Name {
		t.Fatalf("ring tail = %+v", es)
	}
}

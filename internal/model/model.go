// Package model implements the model store of the PIC framework. The
// paper requires only that "the model be expressed in the form of
// key/value pairs" (§III-C): keys make model elements uniquely
// identifiable so partition functions can split a model and merge
// functions can establish correspondence between elements of partial
// models.
//
// A Model is a mutable map from string keys to writable values with a
// deterministic encoded size; the size is what the runtime charges when
// a model is updated in the DFS or distributed to tasks.
package model

import (
	"encoding/binary"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/writable"
)

// Model is a set of key/value pairs representing an iterative
// algorithm's state (centroids, ranks and edge scores, weights, the
// solution vector, image rows, ...).
type Model struct {
	entries map[string]writable.Writable
	// keys caches the sorted key slice between mutations of the key
	// set: models with tens of thousands of entries (PageRank's per-edge
	// scores) are Range'd several times per iteration, and re-sorting
	// on every walk dominated profiles. The pointer is atomic so
	// read-only use from concurrent tasks stays race-free.
	keys atomic.Pointer[[]string]
}

// New returns an empty model.
func New() *Model {
	return &Model{entries: make(map[string]writable.Writable)}
}

// NewWithCapacity returns an empty model whose entry map is pre-sized
// for n keys, so bulk builders (decode, merge trees, per-partition
// model refresh) avoid the incremental map growth of Set-by-Set
// construction.
func NewWithCapacity(n int) *Model {
	return &Model{entries: make(map[string]writable.Writable, n)}
}

// Set stores v under key, replacing any previous value.
func (m *Model) Set(key string, v writable.Writable) {
	if m.keys.Load() != nil {
		if _, ok := m.entries[key]; !ok {
			m.keys.Store(nil)
		}
	}
	m.entries[key] = v
}

// Get returns the value stored under key.
func (m *Model) Get(key string) (writable.Writable, bool) {
	v, ok := m.entries[key]
	return v, ok
}

// Vector returns the value under key as a writable.Vector. It returns
// false if the key is missing or holds a different kind.
func (m *Model) Vector(key string) (writable.Vector, bool) {
	v, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	vec, ok := v.(writable.Vector)
	return vec, ok
}

// Float returns the value under key as a float64. It returns false if
// the key is missing or holds a different kind.
func (m *Model) Float(key string) (float64, bool) {
	v, ok := m.entries[key]
	if !ok {
		return 0, false
	}
	f, ok := v.(writable.Float64)
	return float64(f), ok
}

// Delete removes key from the model. Deleting a missing key is a no-op.
func (m *Model) Delete(key string) {
	if _, ok := m.entries[key]; ok {
		m.keys.Store(nil)
	}
	delete(m.entries, key)
}

// Len reports the number of entries.
func (m *Model) Len() int { return len(m.entries) }

// Keys returns the model's keys in sorted order, so iteration over a
// model is deterministic. The slice is cached until the key set next
// changes and is shared between callers: treat it as read-only.
func (m *Model) Keys() []string {
	if p := m.keys.Load(); p != nil {
		return *p
	}
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	m.keys.Store(&keys)
	return keys
}

// Range calls fn for each entry in sorted key order until fn returns
// false.
func (m *Model) Range(fn func(key string, v writable.Writable) bool) {
	for _, k := range m.Keys() {
		if !fn(k, m.entries[k]) {
			return
		}
	}
}

// Clone returns a deep copy: mutating the copy's values never affects
// the original.
func (m *Model) Clone() *Model {
	c := &Model{entries: make(map[string]writable.Writable, len(m.entries))}
	for k, v := range m.entries {
		c.entries[k] = writable.Clone(v)
	}
	// The clone has the same key set, so it can share the (read-only)
	// sorted-key cache; each copy invalidates its own pointer when its
	// key set diverges.
	if p := m.keys.Load(); p != nil {
		c.keys.Store(p)
	}
	return c
}

// Size reports the encoded size of the model in bytes: for each entry, a
// length-prefixed key plus the encoded value. This is the number of
// bytes a model update moves across the network per copy.
func (m *Model) Size() int64 {
	var n int64
	for k, v := range m.entries {
		n += int64(uvarintLen(uint64(len(k))) + len(k) + writable.Size(v))
	}
	return n
}

// Equal reports whether two models have the same keys bound to equal
// values.
func (m *Model) Equal(o *Model) bool {
	if m.Len() != o.Len() {
		return false
	}
	for k, v := range m.entries {
		ov, ok := o.entries[k]
		if !ok || !writable.Equal(v, ov) {
			return false
		}
	}
	return true
}

// Encode appends a deterministic binary encoding of the model to dst:
// entries in sorted key order, each as length-prefixed key bytes
// followed by the encoded value. len(Encode(nil)) == Size().
func (m *Model) Encode(dst []byte) []byte {
	for _, k := range m.Keys() {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = writable.Encode(dst, m.entries[k])
	}
	return dst
}

// Decode parses a model encoded by Encode.
func Decode(src []byte) (*Model, error) {
	m := NewWithCapacity(16)
	for len(src) > 0 {
		klen, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < klen {
			return nil, writable.ErrTruncated
		}
		if n != uvarintLen(klen) {
			return nil, writable.ErrNonCanonical
		}
		key := string(src[n : n+int(klen)])
		var v writable.Writable
		var err error
		v, src, err = writable.Decode(src[n+int(klen):])
		if err != nil {
			return nil, err
		}
		m.entries[key] = v
	}
	return m, nil
}

// MaxVectorDelta returns the largest L2 distance between corresponding
// Vector entries of two models — the convergence metric the paper uses
// for K-means ("the change in the value of all the K centroids is within
// a pre-specified threshold"). Entries that are not vectors, or keys
// present in only one model, are ignored.
func MaxVectorDelta(a, b *Model) float64 {
	var worst float64
	for k, av := range a.entries {
		avec, ok := av.(writable.Vector)
		if !ok {
			continue
		}
		bv, ok := b.entries[k]
		if !ok {
			continue
		}
		bvec, ok := bv.(writable.Vector)
		if !ok || len(bvec) != len(avec) {
			continue
		}
		var d2 float64
		for i := range avec {
			d := avec[i] - bvec[i]
			d2 += d * d
		}
		if d2 > worst {
			worst = d2
		}
	}
	return math.Sqrt(worst)
}

// MaxFloatDelta returns the largest absolute difference between
// corresponding Float64 entries of two models — the convergence metric
// for scalar-valued models such as PageRank ranks.
func MaxFloatDelta(a, b *Model) float64 {
	var worst float64
	for k, av := range a.entries {
		af, ok := av.(writable.Float64)
		if !ok {
			continue
		}
		bv, ok := b.entries[k]
		if !ok {
			continue
		}
		bf, ok := bv.(writable.Float64)
		if !ok {
			continue
		}
		d := float64(af) - float64(bf)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DiffStats summarizes how a model changed between two versions.
type DiffStats struct {
	// Added, Removed and Changed count keys by category; Unchanged is
	// the rest.
	Added, Removed, Changed, Unchanged int
	// DeltaBytes is the encoded size of a delta update: every added or
	// changed entry plus a key-only tombstone per removal.
	DeltaBytes int64
}

// Diff compares two model versions and returns the delta model (added
// and changed entries of next) together with statistics. Models whose
// entries all change every iteration (float state) produce deltas as
// large as the full model — the measurement the delta-update ablation
// relies on.
func Diff(prev, next *Model) (*Model, DiffStats) {
	delta := New()
	var stats DiffStats
	for k, nv := range next.entries {
		pv, ok := prev.entries[k]
		switch {
		case !ok:
			stats.Added++
			delta.Set(k, nv)
		case !writable.Equal(pv, nv):
			stats.Changed++
			delta.Set(k, nv)
		default:
			stats.Unchanged++
		}
	}
	for k := range prev.entries {
		if _, ok := next.entries[k]; !ok {
			stats.Removed++
			stats.DeltaBytes += int64(uvarintLen(uint64(len(k))) + len(k) + 1) // tombstone
		}
	}
	stats.DeltaBytes += delta.Size()
	return delta, stats
}

// ApplyDelta returns prev with the delta's entries applied (removals are
// not represented in the delta model itself; pass removed keys
// separately if needed).
func ApplyDelta(prev, delta *Model) *Model {
	out := prev.Clone()
	delta.Range(func(k string, v writable.Writable) bool {
		out.Set(k, writable.Clone(v))
		return true
	})
	return out
}

package model

import (
	"fmt"
	"testing"

	"repro/internal/writable"
)

func benchModel(entries int) *Model {
	m := New()
	for i := 0; i < entries; i++ {
		m.Set(fmt.Sprintf("c%05d", i), writable.Vector{float64(i), float64(i) + 1, float64(i) + 2})
	}
	return m
}

func BenchmarkModelClone(b *testing.B) {
	m := benchModel(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.Clone().Len() != 100 {
			b.Fatal("bad clone")
		}
	}
}

func BenchmarkModelSize(b *testing.B) {
	m := benchModel(100)
	for i := 0; i < b.N; i++ {
		if m.Size() == 0 {
			b.Fatal("zero size")
		}
	}
}

func BenchmarkModelEncode(b *testing.B) {
	m := benchModel(100)
	buf := make([]byte, 0, m.Size())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Encode(buf[:0])
	}
}

func BenchmarkMaxVectorDelta(b *testing.B) {
	a, c := benchModel(100), benchModel(100)
	for i := 0; i < b.N; i++ {
		MaxVectorDelta(a, c)
	}
}

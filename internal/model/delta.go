package model

import (
	"encoding/binary"
	"fmt"

	"repro/internal/writable"
)

// Sparse model deltas.
//
// A delta is the canonical binary encoding of the difference between
// two model versions: only the keys that changed are carried, each as a
// varint-length-prefixed key followed by an op byte (set or tombstone)
// and, for sets, the packed writable encoding of the new value. Keys
// appear in strictly ascending order and every varint is minimal, so a
// given (prev, next) pair has exactly one valid delta encoding — deltas
// can be compared byte-wise just like full model encodings.
//
// The delta format is what loop-aware delta shipping (the model bytes a
// warm iteration actually moves to its persistent workers) and opt-in
// delta checkpoints charge, instead of the full model size.

// Delta op bytes. The values are part of the wire format.
const (
	deltaOpSet    = 0x00
	deltaOpDelete = 0x01
)

// EncodeDelta appends the canonical sparse encoding of the changes
// between prev and next to dst: one entry per added or changed key of
// next (op set, with the new value) and one tombstone per key of prev
// missing from next (op delete), in ascending key order.
func EncodeDelta(prev, next *Model, dst []byte) []byte {
	pk, nk := prev.Keys(), next.Keys()
	i, j := 0, 0
	emit := func(key string, op byte, v writable.Writable) {
		dst = binary.AppendUvarint(dst, uint64(len(key)))
		dst = append(dst, key...)
		dst = append(dst, op)
		if op == deltaOpSet {
			dst = writable.Encode(dst, v)
		}
	}
	for i < len(pk) && j < len(nk) {
		switch {
		case pk[i] < nk[j]:
			emit(pk[i], deltaOpDelete, nil)
			i++
		case pk[i] > nk[j]:
			emit(nk[j], deltaOpSet, next.entries[nk[j]])
			j++
		default:
			if !writable.Equal(prev.entries[pk[i]], next.entries[nk[j]]) {
				emit(nk[j], deltaOpSet, next.entries[nk[j]])
			}
			i++
			j++
		}
	}
	for ; i < len(pk); i++ {
		emit(pk[i], deltaOpDelete, nil)
	}
	for ; j < len(nk); j++ {
		emit(nk[j], deltaOpSet, next.entries[nk[j]])
	}
	return dst
}

// DeltaSize reports len(EncodeDelta(prev, next, nil)) without building
// the encoding — the byte count delta shipping charges per iteration.
func DeltaSize(prev, next *Model) int64 {
	pk, nk := prev.Keys(), next.Keys()
	var n int64
	i, j := 0, 0
	set := func(key string, v writable.Writable) {
		n += int64(uvarintLen(uint64(len(key))) + len(key) + 1 + writable.Size(v))
	}
	tomb := func(key string) {
		n += int64(uvarintLen(uint64(len(key))) + len(key) + 1)
	}
	for i < len(pk) && j < len(nk) {
		switch {
		case pk[i] < nk[j]:
			tomb(pk[i])
			i++
		case pk[i] > nk[j]:
			set(nk[j], next.entries[nk[j]])
			j++
		default:
			if !writable.Equal(prev.entries[pk[i]], next.entries[nk[j]]) {
				set(nk[j], next.entries[nk[j]])
			}
			i++
			j++
		}
	}
	for ; i < len(pk); i++ {
		tomb(pk[i])
	}
	for ; j < len(nk); j++ {
		set(nk[j], next.entries[nk[j]])
	}
	return n
}

// ApplyDeltaBytes returns a copy of prev with an encoded delta applied:
// set ops overwrite or insert, tombstones remove. It rejects truncated
// input, non-canonical varints, unknown ops and out-of-order keys, so
// round-tripping through EncodeDelta is exact:
// ApplyDeltaBytes(prev, EncodeDelta(prev, next, nil)).Equal(next).
func ApplyDeltaBytes(prev *Model, src []byte) (*Model, error) {
	out := prev.Clone()
	lastKey, first := "", true
	for len(src) > 0 {
		klen, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < klen {
			return nil, writable.ErrTruncated
		}
		if n != uvarintLen(klen) {
			return nil, writable.ErrNonCanonical
		}
		key := string(src[n : n+int(klen)])
		if !first && key <= lastKey {
			return nil, fmt.Errorf("model: delta keys out of order (%q after %q)", key, lastKey)
		}
		lastKey, first = key, false
		src = src[n+int(klen):]
		if len(src) == 0 {
			return nil, writable.ErrTruncated
		}
		op := src[0]
		src = src[1:]
		switch op {
		case deltaOpSet:
			var v writable.Writable
			var err error
			v, src, err = writable.Decode(src)
			if err != nil {
				return nil, err
			}
			out.Set(key, v)
		case deltaOpDelete:
			out.Delete(key)
		default:
			return nil, fmt.Errorf("model: unknown delta op 0x%02x for key %q", op, key)
		}
	}
	return out, nil
}

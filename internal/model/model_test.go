package model

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/writable"
)

func TestSetGet(t *testing.T) {
	m := New()
	m.Set("a", writable.Int64(1))
	v, ok := m.Get("a")
	if !ok || v.(writable.Int64) != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("missing key found")
	}
}

func TestSetOverwrites(t *testing.T) {
	m := New()
	m.Set("a", writable.Int64(1))
	m.Set("a", writable.Int64(2))
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	v, _ := m.Get("a")
	if v.(writable.Int64) != 2 {
		t.Fatalf("value = %v", v)
	}
}

func TestVectorHelper(t *testing.T) {
	m := New()
	m.Set("v", writable.Vector{1, 2})
	m.Set("i", writable.Int64(1))
	if v, ok := m.Vector("v"); !ok || len(v) != 2 {
		t.Fatalf("Vector = %v, %v", v, ok)
	}
	if _, ok := m.Vector("i"); ok {
		t.Fatal("Int64 returned as Vector")
	}
	if _, ok := m.Vector("missing"); ok {
		t.Fatal("missing key returned as Vector")
	}
}

func TestFloatHelper(t *testing.T) {
	m := New()
	m.Set("f", writable.Float64(2.5))
	m.Set("v", writable.Vector{1})
	if f, ok := m.Float("f"); !ok || f != 2.5 {
		t.Fatalf("Float = %v, %v", f, ok)
	}
	if _, ok := m.Float("v"); ok {
		t.Fatal("Vector returned as Float")
	}
}

func TestDelete(t *testing.T) {
	m := New()
	m.Set("a", writable.Int64(1))
	m.Delete("a")
	if m.Len() != 0 {
		t.Fatal("Delete did not remove entry")
	}
	m.Delete("a") // no-op
}

func TestKeysSorted(t *testing.T) {
	m := New()
	for _, k := range []string{"z", "a", "m"} {
		m.Set(k, writable.Null{})
	}
	keys := m.Keys()
	want := []string{"a", "m", "z"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v", keys)
		}
	}
}

func TestRangeOrderAndEarlyStop(t *testing.T) {
	m := New()
	for i := 0; i < 5; i++ {
		m.Set(fmt.Sprintf("k%d", i), writable.Int64(i))
	}
	var seen []string
	m.Range(func(k string, _ writable.Writable) bool {
		seen = append(seen, k)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != "k0" || seen[2] != "k2" {
		t.Fatalf("Range visited %v", seen)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Set("v", writable.Vector{1, 2})
	c := m.Clone()
	vec, _ := c.Vector("v")
	vec[0] = 99
	orig, _ := m.Vector("v")
	if orig[0] != 1 {
		t.Fatal("Clone shares vector storage")
	}
	c.Set("new", writable.Int64(1))
	if _, ok := m.Get("new"); ok {
		t.Fatal("Clone shares map")
	}
}

func TestEqual(t *testing.T) {
	a := New()
	a.Set("x", writable.Vector{1, 2})
	b := New()
	b.Set("x", writable.Vector{1, 2})
	if !a.Equal(b) {
		t.Fatal("equal models reported unequal")
	}
	b.Set("x", writable.Vector{1, 3})
	if a.Equal(b) {
		t.Fatal("unequal values reported equal")
	}
	b.Set("x", writable.Vector{1, 2})
	b.Set("y", writable.Null{})
	if a.Equal(b) {
		t.Fatal("different key sets reported equal")
	}
}

func TestSizeMatchesEncoding(t *testing.T) {
	m := New()
	m.Set("centroid-0", writable.Vector{1, 2, 3})
	m.Set("count", writable.Int64(7))
	if got, want := int64(len(m.Encode(nil))), m.Size(); got != want {
		t.Fatalf("encoded %d bytes, Size reports %d", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := New()
	m.Set("a", writable.Vector{1, 2})
	m.Set("b", writable.Float64(3))
	m.Set("c", writable.Text("hi"))
	out, err := Decode(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(out) {
		t.Fatal("round trip lost data")
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := New()
	m.Set("key", writable.Vector{1, 2, 3})
	buf := m.Encode(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Fatalf("decoding %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	m, err := Decode(nil)
	if err != nil || m.Len() != 0 {
		t.Fatalf("Decode(nil) = %v, %v", m, err)
	}
}

func TestMaxVectorDelta(t *testing.T) {
	a := New()
	a.Set("c0", writable.Vector{0, 0})
	a.Set("c1", writable.Vector{1, 1})
	b := New()
	b.Set("c0", writable.Vector{3, 4}) // distance 5
	b.Set("c1", writable.Vector{1, 2}) // distance 1
	if got := MaxVectorDelta(a, b); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MaxVectorDelta = %v, want 5", got)
	}
}

func TestMaxVectorDeltaIgnoresMismatches(t *testing.T) {
	a := New()
	a.Set("v", writable.Vector{1})
	a.Set("f", writable.Float64(0))
	a.Set("only-a", writable.Vector{9})
	b := New()
	b.Set("v", writable.Vector{1})
	b.Set("f", writable.Float64(100))
	b.Set("len-mismatch", writable.Vector{1, 2})
	a.Set("len-mismatch", writable.Vector{5})
	if got := MaxVectorDelta(a, b); got != 0 {
		t.Fatalf("MaxVectorDelta = %v, want 0", got)
	}
}

func TestMaxFloatDelta(t *testing.T) {
	a := New()
	a.Set("r0", writable.Float64(1))
	a.Set("r1", writable.Float64(-2))
	b := New()
	b.Set("r0", writable.Float64(1.5))
	b.Set("r1", writable.Float64(-5))
	if got := MaxFloatDelta(a, b); got != 3 {
		t.Fatalf("MaxFloatDelta = %v, want 3", got)
	}
}

func TestZeroDeltaOnIdenticalModels(t *testing.T) {
	m := New()
	m.Set("v", writable.Vector{1, 2})
	m.Set("f", writable.Float64(7))
	if MaxVectorDelta(m, m) != 0 || MaxFloatDelta(m, m) != 0 {
		t.Fatal("self-delta not zero")
	}
}

func randomModel(rng *rand.Rand) *Model {
	m := New()
	n := rng.Intn(10)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(20))
		switch rng.Intn(3) {
		case 0:
			v := make(writable.Vector, rng.Intn(5)+1)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			m.Set(key, v)
		case 1:
			m.Set(key, writable.Float64(rng.NormFloat64()))
		default:
			m.Set(key, writable.Int64(rng.Int63n(1000)))
		}
	}
	return m
}

// Property: Encode/Decode round-trips any model, and Size always equals
// the encoded length.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		buf := m.Encode(nil)
		if int64(len(buf)) != m.Size() {
			return false
		}
		out, err := Decode(buf)
		return err == nil && m.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone produces an Equal model whose mutation does not affect
// the original.
func TestQuickCloneEquality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		c := m.Clone()
		if !m.Equal(c) || !c.Equal(m) {
			return false
		}
		c.Set("mutant", writable.Int64(1))
		_, leaked := m.Get("mutant")
		return !leaked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffCategorizesChanges(t *testing.T) {
	prev := New()
	prev.Set("same", writable.Float64(1))
	prev.Set("changed", writable.Float64(2))
	prev.Set("removed", writable.Float64(3))
	next := New()
	next.Set("same", writable.Float64(1))
	next.Set("changed", writable.Float64(9))
	next.Set("added", writable.Float64(4))

	delta, stats := Diff(prev, next)
	if stats.Added != 1 || stats.Removed != 1 || stats.Changed != 1 || stats.Unchanged != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if delta.Len() != 2 {
		t.Fatalf("delta has %d entries", delta.Len())
	}
	if _, ok := delta.Get("same"); ok {
		t.Fatal("unchanged key in delta")
	}
	if stats.DeltaBytes <= delta.Size() {
		t.Fatalf("DeltaBytes %d missing tombstone overhead over %d", stats.DeltaBytes, delta.Size())
	}
}

func TestApplyDeltaReconstructs(t *testing.T) {
	prev := New()
	prev.Set("a", writable.Float64(1))
	prev.Set("b", writable.Float64(2))
	next := prev.Clone()
	next.Set("b", writable.Float64(7))
	next.Set("c", writable.Vector{1, 2})

	delta, _ := Diff(prev, next)
	got := ApplyDelta(prev, delta)
	if !got.Equal(next) {
		t.Fatal("ApplyDelta did not reconstruct next")
	}
	// prev untouched.
	if v, _ := prev.Float("b"); v != 2 {
		t.Fatal("ApplyDelta mutated prev")
	}
}

func TestDiffIdenticalModelsIsEmpty(t *testing.T) {
	m := New()
	m.Set("x", writable.Vector{1, 2, 3})
	delta, stats := Diff(m, m)
	if delta.Len() != 0 || stats.Changed != 0 || stats.DeltaBytes != 0 {
		t.Fatalf("self-diff = %d entries, %+v", delta.Len(), stats)
	}
}

func TestDecodeRejectsNonCanonicalKeyLength(t *testing.T) {
	// Key length 1 encoded in two varint bytes.
	if _, err := Decode([]byte{0x81, 0x00, 'k', 0x00}); err == nil {
		t.Fatal("non-minimal key length accepted")
	}
}

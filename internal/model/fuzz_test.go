package model

import (
	"bytes"
	"testing"

	"repro/internal/writable"
)

// FuzzModelDecode exercises the model decoder with arbitrary bytes: no
// panics, and accepted inputs must round-trip canonically.
func FuzzModelDecode(f *testing.F) {
	m := New()
	m.Set("centroid", writable.Vector{1, 2, 3})
	m.Set("rank", writable.Float64(0.5))
	f.Add(m.Encode(nil))
	f.Add([]byte{})
	f.Add([]byte{0x03, 'a', 'b', 'c', 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		// The model encoding is canonical (sorted keys), so a decoded
		// model re-encodes to an equivalent model, byte-identically
		// when the input was itself canonical.
		again, err := Decode(decoded.Encode(nil))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !decoded.Equal(again) {
			t.Fatal("round trip changed the model")
		}
		if int64(len(decoded.Encode(nil))) != decoded.Size() {
			t.Fatal("Size disagrees with encoding length")
		}
		_ = bytes.Equal(data, decoded.Encode(nil)) // canonical inputs round-trip exactly
	})
}

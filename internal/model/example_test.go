package model_test

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/writable"
)

// Example shows the key/value model surface of §III-C: elements are
// uniquely identifiable for partitioning and merging, sizes are
// byte-exact, and encodings round-trip for checkpoints.
func Example() {
	m := model.New()
	m.Set("centroid-0", writable.Vector{1, 2, 3})
	m.Set("centroid-1", writable.Vector{4, 5, 6})

	next := m.Clone()
	v, _ := next.Vector("centroid-0")
	v[0] = 1.5

	fmt.Printf("entries: %d, moved by %.1f\n", m.Len(), model.MaxVectorDelta(m, next))

	restored, _ := model.Decode(next.Encode(nil))
	fmt.Printf("checkpoint round-trips: %v (%d bytes)\n", restored.Equal(next), next.Size())
	// Output:
	// entries: 2, moved by 0.5
	// checkpoint round-trips: true (74 bytes)
}

package model

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/writable"
)

func deltaFixture() (*Model, *Model) {
	prev := New()
	next := New()
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("c%03d", i)
		v := writable.Vector{float64(i), float64(i) * 2, 3}
		prev.Set(k, v)
		if i%10 == 0 {
			// changed
			next.Set(k, writable.Vector{float64(i) + 0.5, float64(i) * 2, 3})
		} else if i%10 == 1 {
			// removed: not set on next
		} else {
			next.Set(k, v.Clone())
		}
	}
	next.Set("extra", writable.Float64(7)) // added
	return prev, next
}

func TestDeltaRoundTrip(t *testing.T) {
	prev, next := deltaFixture()
	enc := EncodeDelta(prev, next, nil)
	got, err := ApplyDeltaBytes(prev, enc)
	if err != nil {
		t.Fatalf("ApplyDeltaBytes: %v", err)
	}
	if !got.Equal(next) {
		t.Fatal("delta round trip did not reproduce next")
	}
	// prev untouched by the application.
	if _, ok := prev.Get("extra"); ok {
		t.Fatal("ApplyDeltaBytes mutated prev")
	}
}

func TestDeltaSizeMatchesEncoding(t *testing.T) {
	prev, next := deltaFixture()
	enc := EncodeDelta(prev, next, nil)
	if got, want := DeltaSize(prev, next), int64(len(enc)); got != want {
		t.Fatalf("DeltaSize = %d, len(EncodeDelta) = %d", got, want)
	}
	// Sparse: only 4 changed + 1 added + 4 tombstones out of 41 keys, so
	// the delta must be well under the full encoding.
	if full := next.Size(); DeltaSize(prev, next) >= full {
		t.Fatalf("delta %d B not smaller than full model %d B", DeltaSize(prev, next), full)
	}
}

func TestDeltaDeterministic(t *testing.T) {
	prev, next := deltaFixture()
	a := EncodeDelta(prev, next, nil)
	b := EncodeDelta(prev.Clone(), next.Clone(), nil)
	if !bytes.Equal(a, b) {
		t.Fatal("EncodeDelta not deterministic across clones")
	}
}

func TestDeltaIdenticalModelsEmpty(t *testing.T) {
	prev, _ := deltaFixture()
	if enc := EncodeDelta(prev, prev.Clone(), nil); len(enc) != 0 {
		t.Fatalf("delta of identical models = %d bytes, want 0", len(enc))
	}
	if n := DeltaSize(prev, prev); n != 0 {
		t.Fatalf("DeltaSize of identical models = %d, want 0", n)
	}
}

func TestApplyDeltaBytesRejectsCorruption(t *testing.T) {
	prev, next := deltaFixture()
	enc := EncodeDelta(prev, next, nil)
	cases := map[string][]byte{
		"truncated":       enc[:len(enc)-3],
		"unknown op":      append(append([]byte{1, 'z'}, 0x7f), enc...),
		"missing op byte": {1, 'a'},
	}
	for name, data := range cases {
		if _, err := ApplyDeltaBytes(prev, data); err == nil {
			t.Errorf("%s: ApplyDeltaBytes accepted corrupt input", name)
		}
	}
	// Out-of-order keys: two set ops with descending keys.
	var bad []byte
	m2 := New()
	m2.Set("b", writable.Float64(1))
	bad = EncodeDelta(New(), m2, bad)
	m3 := New()
	m3.Set("a", writable.Float64(2))
	bad = EncodeDelta(New(), m3, bad)
	if _, err := ApplyDeltaBytes(prev, bad); err == nil {
		t.Error("ApplyDeltaBytes accepted out-of-order keys")
	}
}

func TestDeltaTombstones(t *testing.T) {
	prev := New()
	prev.Set("keep", writable.Float64(1))
	prev.Set("kill", writable.Float64(2))
	next := New()
	next.Set("keep", writable.Float64(1))
	got, err := ApplyDeltaBytes(prev, EncodeDelta(prev, next, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Get("kill"); ok {
		t.Fatal("tombstone did not remove key")
	}
	if got.Len() != 1 {
		t.Fatalf("got %d entries, want 1", got.Len())
	}
}

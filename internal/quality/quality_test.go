package quality

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestNearestCentroid(t *testing.T) {
	centroids := []linalg.Vector{{0, 0}, {10, 0}, {0, 10}}
	cases := []struct {
		p    linalg.Vector
		want int
	}{
		{linalg.Vector{1, 1}, 0},
		{linalg.Vector{9, 1}, 1},
		{linalg.Vector{1, 9}, 2},
		{linalg.Vector{5, 0}, 0}, // tie breaks to lower index
	}
	for _, c := range cases {
		if got := NearestCentroid(c.p, centroids); got != c.want {
			t.Errorf("NearestCentroid(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestJagotaIndexPerfectClusters(t *testing.T) {
	centroids := []linalg.Vector{{0, 0}, {100, 100}}
	points := []linalg.Vector{{0, 0}, {100, 100}, {0, 0}}
	if q := JagotaIndex(points, centroids); q != 0 {
		t.Fatalf("Q = %v for points on centroids, want 0", q)
	}
}

func TestJagotaIndexKnownValue(t *testing.T) {
	centroids := []linalg.Vector{{0, 0}}
	points := []linalg.Vector{{3, 4}, {0, 5}} // distances 5 and 5
	if q := JagotaIndex(points, centroids); math.Abs(q-5) > 1e-12 {
		t.Fatalf("Q = %v, want 5", q)
	}
}

func TestJagotaIndexEmptyClusterIgnored(t *testing.T) {
	centroids := []linalg.Vector{{0, 0}, {1000, 1000}}
	points := []linalg.Vector{{1, 0}}
	if q := JagotaIndex(points, centroids); math.Abs(q-1) > 1e-12 {
		t.Fatalf("Q = %v, want 1", q)
	}
}

func TestJagotaTighterClustersScoreLower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centroids := []linalg.Vector{{0, 0}, {50, 50}}
	tight := make([]linalg.Vector, 100)
	loose := make([]linalg.Vector, 100)
	for i := range tight {
		c := centroids[i%2]
		tight[i] = linalg.Vector{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
		loose[i] = linalg.Vector{c[0] + rng.NormFloat64()*10, c[1] + rng.NormFloat64()*10}
	}
	if JagotaIndex(tight, centroids) >= JagotaIndex(loose, centroids) {
		t.Fatal("tighter clusters did not score lower")
	}
}

func TestPercentDifference(t *testing.T) {
	if got := PercentDifference(2.112, 2.109); math.Abs(got-0.1422) > 0.01 {
		t.Fatalf("PercentDifference = %v, want ≈0.14 (the paper's Table III)", got)
	}
	if got := PercentDifference(1, 2); got != 50 {
		t.Fatalf("PercentDifference(1,2) = %v", got)
	}
}

func TestMisclassificationRate(t *testing.T) {
	if got := MisclassificationRate([]int{1, 2, 3, 4}, []int{1, 2, 0, 0}); got != 0.5 {
		t.Fatalf("rate = %v, want 0.5", got)
	}
	if got := MisclassificationRate([]int{1}, []int{1}); got != 0 {
		t.Fatalf("rate = %v, want 0", got)
	}
}

func TestMisclassificationRatePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { MisclassificationRate([]int{1}, []int{1, 2}) },
		func() { MisclassificationRate(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMatchCentroidsPermutationInvariant(t *testing.T) {
	ref := []linalg.Vector{{0, 0}, {10, 10}, {20, 0}}
	permuted := []linalg.Vector{{20, 0}, {0, 0}, {10, 10}}
	if d := MatchCentroids(permuted, ref); d != 0 {
		t.Fatalf("distance = %v for permuted identical centroids", d)
	}
}

func TestMatchCentroidsKnownDistance(t *testing.T) {
	ref := []linalg.Vector{{0, 0}, {10, 0}}
	cand := []linalg.Vector{{0, 3}, {10, 4}}
	if d := MatchCentroids(cand, ref); math.Abs(d-7) > 1e-12 {
		t.Fatalf("distance = %v, want 7", d)
	}
}

func TestVectorError(t *testing.T) {
	if got := VectorError(linalg.Vector{3, 4}, linalg.Vector{0, 0}); got != 5 {
		t.Fatalf("VectorError = %v, want 5", got)
	}
}

// Property: the Jagota index is non-negative and zero only when all
// points sit on centroids.
func TestQuickJagotaNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(4) + 1
		centroids := make([]linalg.Vector, k)
		for i := range centroids {
			centroids[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		points := make([]linalg.Vector, rng.Intn(30)+1)
		for i := range points {
			points[i] = linalg.Vector{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		return JagotaIndex(points, centroids) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: matching a centroid set against itself is always zero.
func TestQuickMatchSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 1
		cs := make([]linalg.Vector, k)
		for i := range cs {
			cs[i] = linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		}
		return MatchCentroids(cs, cs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Package quality implements the model-quality metrics of the paper's
// §VI evaluation: the Jagota index for clustering tightness, validation
// misclassification rate for classifiers, and distances to golden
// solutions for solvers.
package quality

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// NearestCentroid returns the index of the centroid closest to p (ties
// break toward the lower index).
func NearestCentroid(p linalg.Vector, centroids []linalg.Vector) int {
	best, bestDist := 0, math.Inf(1)
	for c, mu := range centroids {
		if d := p.Dist2(mu); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// JagotaIndex computes Q = Σ_i (1/|C_i|) Σ_{x∈C_i} d(x, μ_i), the
// cluster-tightness metric of the paper's Table III (lower is tighter).
// Points are assigned to their nearest centroid; empty clusters
// contribute zero.
func JagotaIndex(points []linalg.Vector, centroids []linalg.Vector) float64 {
	if len(centroids) == 0 {
		panic("quality: JagotaIndex with no centroids")
	}
	sums := make([]float64, len(centroids))
	counts := make([]int, len(centroids))
	for _, p := range points {
		c := NearestCentroid(p, centroids)
		sums[c] += p.Dist2(centroids[c])
		counts[c]++
	}
	var q float64
	for c := range sums {
		if counts[c] > 0 {
			q += sums[c] / float64(counts[c])
		}
	}
	return q
}

// PercentDifference returns |a-b| / b × 100 — how the paper reports the
// Table III gap between PIC's best-effort model and the IC solution.
func PercentDifference(a, b float64) float64 {
	if b == 0 {
		panic("quality: percent difference against zero")
	}
	return math.Abs(a-b) / math.Abs(b) * 100
}

// MisclassificationRate is the fraction of samples whose predicted label
// differs from the truth — the neural-network model error of Figure
// 12(a).
func MisclassificationRate(predicted, truth []int) float64 {
	if len(predicted) != len(truth) {
		panic(fmt.Sprintf("quality: %d predictions for %d labels", len(predicted), len(truth)))
	}
	if len(truth) == 0 {
		panic("quality: empty evaluation set")
	}
	wrong := 0
	for i := range truth {
		if predicted[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(truth))
}

// MatchCentroids greedily pairs each reference centroid with its nearest
// unmatched candidate and returns the summed pairing distance — the
// "distance to the reference solution" K-means error metric of Figure
// 12(b), made permutation-invariant.
func MatchCentroids(candidates, reference []linalg.Vector) float64 {
	if len(candidates) != len(reference) {
		panic(fmt.Sprintf("quality: %d candidates for %d reference centroids", len(candidates), len(reference)))
	}
	used := make([]bool, len(candidates))
	var total float64
	for _, ref := range reference {
		best, bestDist := -1, math.Inf(1)
		for c, cand := range candidates {
			if used[c] {
				continue
			}
			if d := ref.Dist2(cand); d < bestDist {
				best, bestDist = c, d
			}
		}
		used[best] = true
		total += bestDist
	}
	return total
}

// VectorError returns the Euclidean distance between a candidate and a
// golden solution vector — the linear-solver error metric of Figure
// 12(c).
func VectorError(candidate, golden linalg.Vector) float64 {
	return candidate.Dist2(golden)
}

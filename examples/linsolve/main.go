// Linear-solver example: solve a weakly diagonally dominant system with
// distributed Jacobi iteration, watching the error-to-exact-solution
// trajectory of the conventional scheme against PIC's block-Jacobi
// best-effort phase (the paper's Figure 12(c) in miniature).
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/linsolve"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
)

func main() {
	const n = 100

	sys := data.DiffusionSystem(5, n, 1.35)
	newApp := func() *linsolve.App { return linsolve.New(sys.A, sys.B, 1e-4) }
	golden, err := newApp().Golden()
	if err != nil {
		log.Fatal(err)
	}

	trace := func(label string) core.Observer {
		return func(s core.Sample) {
			err := linsolve.Solution(s.Model, n).Sub(golden).Norm2()
			fmt.Printf("  %-12s %-11s t=%6.2fs  error=%.3g\n", label, s.Phase, float64(s.Time), err)
		}
	}

	fmt.Println("conventional Jacobi:")
	rtIC := core.NewRuntime(simcluster.New(simcluster.Small()), dfs.DefaultConfig())
	inIC := mapred.NewInput(newApp().Records(), rtIC.Cluster(), rtIC.Cluster().MapSlots())
	ic, err := core.RunIC(rtIC, newApp(), inIC, linsolve.InitialModel(n), &core.ICOptions{
		Observer: trace("IC"),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PIC block Jacobi:")
	rtPIC := core.NewRuntime(simcluster.New(simcluster.Small()), dfs.DefaultConfig())
	inPIC := mapred.NewInput(newApp().Records(), rtPIC.Cluster(), rtPIC.Cluster().MapSlots())
	pic, err := core.RunPIC(rtPIC, newApp(), inPIC, linsolve.InitialModel(n), core.PICOptions{
		Partitions: 6,
		Observer:   trace("PIC"),
	})
	if err != nil {
		log.Fatal(err)
	}

	icErr := linsolve.Solution(ic.Model, n).Sub(golden).Norm2()
	picErr := linsolve.Solution(pic.Model, n).Sub(golden).Norm2()
	fmt.Printf("\nfinal error: IC %.3g in %.2fs | PIC %.3g in %.2fs (%.2fx)\n",
		icErr, float64(ic.Duration), picErr, float64(pic.Duration),
		float64(ic.Duration)/float64(pic.Duration))
}

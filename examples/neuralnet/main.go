// Neural-network example: train an OCR digit classifier with
// distributed back-propagation, comparing conventional epochs against
// PIC's partition-train-merge rounds (model averaging), and report
// validation accuracy for both.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/neuralnet"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
)

func main() {
	const (
		trainSamples = 2_000
		partitions   = 6
		epochs       = 40
	)

	train := data.OCRVectors(11, trainSamples, 0.08, 0.1)
	valid := data.OCRVectors(12, trainSamples/4, 0.08, 0.1)
	app := neuralnet.New(data.OCRDims, 16, data.OCRClasses, 0.8, 1e-5)

	newRuntime := func() *core.Runtime {
		return core.NewRuntime(simcluster.New(simcluster.Small()), dfs.DefaultConfig())
	}

	// Conventional training: one framework job per epoch.
	rtIC := newRuntime()
	inIC := mapred.NewInput(neuralnet.Records(train.Vectors, train.Labels), rtIC.Cluster(), rtIC.Cluster().MapSlots())
	ic, err := core.RunIC(rtIC, app, inIC, app.InitialModel(1), &core.ICOptions{MaxIterations: epochs})
	if err != nil {
		log.Fatal(err)
	}

	// PIC: shards train locally in memory; merged by weight averaging.
	rtPIC := newRuntime()
	inPIC := mapred.NewInput(neuralnet.Records(train.Vectors, train.Labels), rtPIC.Cluster(), rtPIC.Cluster().MapSlots())
	// Four best-effort rounds of local training already exceed the
	// baseline's progress; a short top-off polishes the averaged model.
	pic, err := core.RunPIC(rtPIC, app, inPIC, app.InitialModel(1), core.PICOptions{
		Partitions:          partitions,
		MaxBEIterations:     4,
		MaxLocalIterations:  epochs / 2,
		MaxTopOffIterations: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	icErr := app.ModelError(ic.Model, valid.Vectors, valid.Labels)
	picErr := app.ModelError(pic.Model, valid.Vectors, valid.Labels)
	fmt.Printf("IC : %d epochs in %6.1f simulated s, validation error %.3f\n",
		ic.Iterations, float64(ic.Duration), icErr)
	fmt.Printf("PIC: %d BE rounds + %d top-off epochs in %6.1f simulated s, validation error %.3f\n",
		pic.BEIterations, pic.TopOffIterations, float64(pic.Duration), picErr)
	fmt.Printf("speedup %.2fx at Δerror %+.3f\n",
		float64(ic.Duration)/float64(pic.Duration), picErr-icErr)
}

// Quickstart: cluster half a million points with K-means, first with
// the conventional iterative-convergence (IC) driver and then with
// partitioned iterative convergence (PIC), and compare time, traffic and
// solution quality — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/kmeans"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/quality"
	"repro/internal/simcluster"
)

func main() {
	const (
		points     = 200_000
		clusters   = 16
		partitions = 6
	)

	// A clustered synthetic dataset: 16 Gaussian components, moderate
	// overlap, shuffled order.
	ps := data.GaussianMixture(42, points, clusters, 3, 100, 10)

	// The K-means application: the same code runs under both drivers.
	newApp := func() *kmeans.App {
		app := kmeans.New(clusters, 0.5)
		app.BEThreshold = 1.0
		return app
	}

	// --- Conventional execution (Figure 1(a) of the paper).
	rtIC := newRuntime()
	inIC := mapred.NewInput(kmeans.Records(ps.Points), rtIC.Cluster(), rtIC.Cluster().MapSlots())
	ic, err := core.RunIC(rtIC, newApp(), inIC, kmeans.InitialModel(ps.Points, clusters), nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Partitioned iterative convergence (Figure 3 of the paper).
	rtPIC := newRuntime()
	inPIC := mapred.NewInput(kmeans.Records(ps.Points), rtPIC.Cluster(), rtPIC.Cluster().MapSlots())
	pic, err := core.RunPIC(rtPIC, newApp(), inPIC, kmeans.InitialModel(ps.Points, clusters),
		core.PICOptions{Partitions: partitions})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("IC : %2d iterations, %6.1f simulated s, %8d KB network traffic\n",
		ic.Iterations, float64(ic.Duration),
		(ic.Metrics.ShuffleNetworkBytes+ic.Metrics.ModelBytes+ic.ModelUpdateBytes)/1024)
	fmt.Printf("PIC: %2d best-effort + %d top-off iterations, %6.1f simulated s, %8d KB network traffic\n",
		pic.BEIterations, pic.TopOffIterations, float64(pic.Duration),
		(pic.Metrics.ShuffleNetworkBytes+pic.Metrics.ModelBytes+pic.ModelUpdateBytes+
			pic.MergeTrafficBytes)/1024)
	fmt.Printf("     (+%d KB one-time repartitioning of the input onto node groups)\n",
		pic.RepartitionBytes/1024)
	fmt.Printf("speedup: %.2fx\n", float64(ic.Duration)/float64(pic.Duration))

	qIC := quality.JagotaIndex(ps.Points, kmeans.Centroids(ic.Model))
	qPIC := quality.JagotaIndex(ps.Points, kmeans.Centroids(pic.Model))
	fmt.Printf("Jagota index: IC %.4f vs PIC %.4f (%.2f%% apart)\n",
		qIC, qPIC, quality.PercentDifference(qPIC, qIC))
}

// newRuntime builds the paper's small research testbed: 6 nodes on
// Gigabit Ethernet with an HDFS-like replicated file system.
func newRuntime() *core.Runtime {
	return core.NewRuntime(simcluster.New(simcluster.Small()), dfs.DefaultConfig())
}

// PageRank example: rank a synthetic nearly-uncoupled web graph with
// the Nutch-style two-phase algorithm under PIC and print the
// highest-ranked pages, cross-checking against a sequential reference.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/apps/pagerank"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
	"repro/internal/webgraph"
)

func main() {
	const (
		pages      = 10_000
		partitions = 10
	)

	// A web graph with 10 communities and 5% cross-community links —
	// the "typically local" structure §VI-B of the paper relies on.
	g := webgraph.NearlyUncoupled(7, pages, partitions, 0.05, 4)
	fmt.Printf("graph: %d pages, %d links\n", g.N, g.NumEdges())

	app := pagerank.New(g, 0.85, 1e-3, 7)
	app.Strategy = pagerank.PartitionLocality

	rt := core.NewRuntime(simcluster.New(simcluster.Small()), dfs.DefaultConfig())
	in := mapred.NewInput(pagerank.Records(g), rt.Cluster(), rt.Cluster().MapSlots())

	res, err := core.RunPIC(rt, app, in, pagerank.InitialModel(g), core.PICOptions{
		Partitions:         partitions,
		MaxLocalIterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PIC: %d best-effort iterations, %d top-off iterations, %.1f simulated s\n",
		res.BEIterations, res.TopOffIterations, float64(res.Duration))

	ranks := pagerank.Ranks(res.Model, g.N)
	type page struct {
		id   int
		rank float64
	}
	top := make([]page, g.N)
	for v, r := range ranks {
		top[v] = page{v, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })

	reference := pagerank.Reference(g, 0.85, 60)
	fmt.Println("top pages (PIC rank vs sequential reference):")
	for _, p := range top[:10] {
		fmt.Printf("  page %5d  rank %8.3f   reference %8.3f\n", p.id, p.rank, reference[p.id])
	}
}

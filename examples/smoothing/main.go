// Image-smoothing example: denoise a synthetic image with the iterative
// stencil smoother under PIC band partitioning, and verify the result
// against the sequential fixed point.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/apps/smoothing"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/simcluster"
)

func main() {
	const (
		width, height = 256, 256
		bands         = 16
	)

	img := data.NoisyImage(8, width, height, 15)
	app := smoothing.New(width, height, 2.0, 0.05)
	app.BEThreshold = 0.2

	rt := core.NewRuntime(simcluster.New(simcluster.Medium()), dfs.DefaultConfig())
	in := mapred.NewInput(smoothing.Records(img), rt.Cluster(), rt.Cluster().MapSlots())

	res, err := core.RunPIC(rt, app, in, smoothing.InitialModel(img), core.PICOptions{
		Partitions: bands,
	})
	if err != nil {
		log.Fatal(err)
	}

	got := smoothing.ImageOf(res.Model, width, height)
	want := smoothing.Reference(img, 2.0, 1e-6, 20_000)

	var worst, noiseBefore, noiseAfter float64
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if d := math.Abs(got.Rows[y][x] - want.Rows[y][x]); d > worst {
				worst = d
			}
			if x+1 < width {
				noiseBefore += math.Abs(img.Rows[y][x+1] - img.Rows[y][x])
				noiseAfter += math.Abs(got.Rows[y][x+1] - got.Rows[y][x])
			}
		}
	}

	fmt.Printf("smoothed %dx%d image in %d best-effort + %d top-off iterations (%.1f simulated s)\n",
		width, height, res.BEIterations, res.TopOffIterations, float64(res.Duration))
	fmt.Printf("total variation: %.0f before, %.0f after (%.1fx smoother)\n",
		noiseBefore, noiseAfter, noiseBefore/noiseAfter)
	fmt.Printf("max deviation from sequential fixed point: %.4f intensity levels\n", worst)
}

// Command datagen emits the synthetic datasets the experiments consume,
// in simple text formats, for inspection or external use.
//
//	datagen -kind points -n 1000 -k 8            # x y z label
//	datagen -kind ocr -n 100                     # label p0 p1 ... p34
//	datagen -kind graph -n 500 -k 5              # src: dst dst ...
//	datagen -kind system -n 20                   # augmented matrix [A|b]
//	datagen -kind image -n 64                    # n×n intensity grid
//
// All generators are deterministic in -seed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/webgraph"
)

func main() {
	var (
		kind = flag.String("kind", "points", "dataset: points|ocr|graph|system|image")
		n    = flag.Int("n", 1000, "dataset size (points, vectors, vertices, variables, image side)")
		k    = flag.Int("k", 8, "clusters (points) or communities (graph)")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "points":
		ps := data.GaussianMixture(*seed, *n, *k, 3, 100, 10)
		for i, p := range ps.Points {
			fmt.Fprintf(w, "%.6f %.6f %.6f %d\n", p[0], p[1], p[2], ps.Labels[i])
		}
	case "ocr":
		set := data.OCRVectors(*seed, *n, 0.05, 0.1)
		for i, v := range set.Vectors {
			fmt.Fprintf(w, "%d", set.Labels[i])
			for _, x := range v {
				fmt.Fprintf(w, " %.4f", x)
			}
			fmt.Fprintln(w)
		}
	case "graph":
		g := webgraph.NearlyUncoupled(*seed, *n, *k, 0.05, 4)
		for v := 0; v < g.N; v++ {
			fmt.Fprintf(w, "%d:", v)
			for _, dst := range g.Out[v] {
				fmt.Fprintf(w, " %d", dst)
			}
			fmt.Fprintln(w)
		}
	case "system":
		sys := data.DiffusionSystem(*seed, *n, 1.35)
		for i := 0; i < *n; i++ {
			for j := 0; j < *n; j++ {
				fmt.Fprintf(w, "%.6f ", sys.A.At(i, j))
			}
			fmt.Fprintf(w, "| %.6f\n", sys.B[i])
		}
	case "image":
		img := data.NoisyImage(*seed, *n, *n, 15)
		for _, row := range img.Rows {
			for _, px := range row {
				fmt.Fprintf(w, "%.2f ", px)
			}
			fmt.Fprintln(w)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}

// Command picbench regenerates the tables and figures of the PIC paper's
// evaluation. Run with no arguments for everything, or name experiments:
//
//	picbench fig2 fig9 fig10 fig11 fig12a fig12b fig12c \
//	         table1 table2 table3 \
//	         abl-parts abl-coupling abl-localfactor abl-degenerate \
//	         abl-faults abl-netfaults abl-tenancy abl-loopaware abl-scale \
//	         abl-backend abl-corruption
//
// Three fault ablations exist: abl-faults crashes a node (machine and
// disk die; DFS re-replicates, tasks reschedule, PIC groups repair),
// abl-netfaults leaves every node alive and severs the network
// between them (periodic core outages; transfers retry, IC blocks,
// PIC merges on a quorum), and abl-corruption flips bits silently
// (checksummed transfers re-send, the DFS quarantines and scrubs, PIC
// merges reject unverifiable partials). Run `picbench -list` for
// one-line descriptions of every experiment.
//
// The report subcommand runs one fully-instrumented PIC execution and
// emits its run-inspector artifacts (Chrome trace JSON and a
// convergence-curve CSV alongside the text report):
//
//	picbench [-scale S] report [-out DIR] [workload ...]
//
// The bench-snapshot subcommand measures the hot-path microbenchmark
// kernels (timings plus allocs/op and bytes/op) and emits a
// machine-readable performance snapshot (see BENCH_baseline.json);
// -check validates an existing snapshot instead, and refuses to compare
// across scale tiers:
//
//	picbench [-scale S] bench-snapshot [-out FILE] [-suite]
//	picbench [-scale S] bench-snapshot -check BENCH_baseline.json
//
// -scale doubles as the scale-ladder control: values above 1 grow the
// tiered kernels and the abl-scale ablation (records linearly, simulated
// nodes with the square root), up to ~10⁷ records on 1,000+ simulated
// nodes at combined tier 1000.
//
// Independent experiment cells (figure rows, sweep points) can run
// concurrently with -parallel N; outputs are byte-identical at any
// setting because all clocks and counters are simulated per cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/trace"
)

type renderer interface{ Render() string }

type experiment struct {
	name string
	desc string
	run  func() (renderer, error)
}

func wrap[T renderer](fn func() (T, error)) func() (renderer, error) {
	return func() (renderer, error) { return fn() }
}

var experiments = []experiment{
	{"fig2", "IC vs PIC wall time per application", wrap(bench.Fig2)},
	{"fig9", "convergence trajectory over time", wrap(bench.Fig9)},
	{"fig10", "BE/top-off phase breakdown", wrap(bench.Fig10)},
	{"fig11", "speedup vs cluster size", wrap(bench.Fig11)},
	{"fig12a", "K-means sensitivity sweep", wrap(bench.Fig12a)},
	{"fig12b", "PageRank sensitivity sweep", wrap(bench.Fig12b)},
	{"fig12c", "matrix-factorization sensitivity sweep", wrap(bench.Fig12c)},
	{"table1", "workload and cluster inventory", wrap(bench.Table1)},
	{"table2", "end-to-end results table", wrap(bench.Table2)},
	{"table3", "network traffic accounting", wrap(bench.Table3)},
	{"abl-parts", "partition-count sweep", wrap(bench.AblationPartitionCount)},
	{"abl-coupling", "graph coupling strength sweep", wrap(bench.AblationGraphCoupling)},
	{"abl-partitioner", "partitioner quality comparison", wrap(bench.AblationPartitioner)},
	{"abl-localfactor", "local-iteration budget sweep", wrap(bench.AblationLocalFactor)},
	{"abl-network", "network cost-model comparison", wrap(bench.AblationNetworkModel)},
	{"abl-async", "synchronous vs asynchronous merge", wrap(bench.AblationAsync)},
	{"abl-seeding", "BE-phase seeding quality", wrap(bench.AblationSeeding)},
	{"abl-rate", "convergence-rate comparison", wrap(bench.AblationConvergenceRate)},
	{"abl-degenerate", "pathological partitioning stress", wrap(bench.AblationDegenerate)},
	{"abl-faults", "node-failure ablation: a machine crashes (disk dies, DFS re-replicates, groups repair)", wrap(bench.AblationNodeFailure)},
	{"abl-netfaults", "network-fault ablation: nodes stay up but core links fail (retries, quorum merges)", wrap(bench.AblationNetworkFault)},
	{"abl-tenancy", "multi-tenant contention ablation", wrap(bench.AblationMultiTenant)},
	{"abl-loopaware", "loop-aware runtime ablation: cold vs warm invariant-input cache (wall time drops, simulated results byte-identical)", wrap(bench.AblationLoopAware)},
	{"abl-scale", "scale-ladder ablation: streamed splits, delta checkpoints, flat vs hierarchical merge across tiers (core bytes drop, outputs byte-identical)", wrap(bench.AblationScale)},
	{"abl-backend", "execution-backend ablation: IC/PIC × mapred/BSP grid with per-link traffic shapes and the pace-crossover size sweep", wrap(bench.AblationBackend)},
	{"abl-corruption", "silent-corruption ablation: IC/PIC × bit-error-rate sweep × detection on/off (checksums catch corrupt payloads, re-sends bridge, the scrubber repairs; silent runs degrade)", wrap(bench.AblationCorruption)},
}

func main() {
	// The suite is allocation-heavy (every map output is materialized) and
	// latency-bound on real compute, so trade heap headroom for fewer GC
	// cycles. An explicit GOGC in the environment wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of rendered tables")
	scaleArg := flag.Float64("scale", 1.0, "dataset-size multiplier: values in (0,1) shrink for smoke runs, 1 is the paper shape, values above 1 climb the scale ladder")
	parallel := flag.Int("parallel", 1, "experiment cells run concurrently (outputs are identical at any setting)")
	list := flag.Bool("list", false, "list experiments and report workloads, then exit")
	flag.Parse()
	if *list {
		sorted := append([]experiment(nil), experiments...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
		for _, e := range sorted {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		fmt.Printf("%-16s %s\n", "bench-snapshot", "measure the hot-path microbenchmark kernels (-out, -check, -suite, -history; see BENCH_baseline.json)")
		for _, w := range bench.ReportWorkloads() {
			fmt.Printf("%-16s %s\n", "report "+w, "instrumented PIC run with inspector report (-out writes trace JSON, convergence CSV, telemetry JSONL, OpenMetrics)")
		}
		for _, w := range bench.ReportWorkloads() {
			fmt.Printf("%-16s %s\n", "watch "+w, "live run inspector: tails the run, prints health frames (-interval, -window, -out, -openmetrics)")
		}
		return
	}
	if *scaleArg != 1.0 {
		bench.SetScale(*scaleArg)
		fmt.Fprintf(os.Stderr, "note: running at scale %.2f — numbers will not match EXPERIMENTS.md\n", *scaleArg)
	}
	bench.SetParallelism(*parallel)
	if args := flag.Args(); len(args) > 0 && args[0] == "report" {
		os.Exit(runReport(args[1:]))
	}
	if args := flag.Args(); len(args) > 0 && args[0] == "bench-snapshot" {
		os.Exit(runSnapshot(args[1:]))
	}
	if args := flag.Args(); len(args) > 0 && args[0] == "watch" {
		os.Exit(runWatch(args[1:]))
	}
	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[arg] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\navailable:", name)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	failed := false
	ran := 0
	var suiteSeconds float64
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		result, err := e.run()
		wall := time.Since(start).Seconds()
		ran++
		suiteSeconds += wall
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			payload := map[string]any{
				"experiment":   e.name,
				"wall_seconds": wall,
				"result":       result,
			}
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintf(os.Stderr, "%s: encode: %v\n", e.name, err)
				failed = true
			}
			continue
		}
		fmt.Println(result.Render())
		fmt.Printf("[%s completed in %.1fs wall time]\n\n", e.name, wall)
	}
	if ran > 0 {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"suite_wall_seconds": suiteSeconds, "experiments": ran})
		} else {
			fmt.Printf("[suite completed in %.1fs wall time: %d experiments]\n", suiteSeconds, ran)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSnapshot executes the bench-snapshot subcommand: measure the
// hot-path microbenchmark kernels and emit (or, with -check, validate)
// the machine-readable performance snapshot.
func runSnapshot(args []string) int {
	fs := flag.NewFlagSet("bench-snapshot", flag.ExitOnError)
	outPath := fs.String("out", "", "write the snapshot JSON to this file (default stdout)")
	checkPath := fs.String("check", "", "validate an existing snapshot file instead of measuring")
	suite := fs.Bool("suite", false, "also run the full experiment suite once and record its wall time")
	historyPath := fs.String("history", "", "append a dated trajectory entry (see BENCH_history.jsonl) to this file")
	fs.Parse(args)
	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		snap, err := bench.CheckSnapshot(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		// Tier like-for-like: a snapshot is only comparable to runs at
		// its own scale, so refuse to validate one against a different
		// current tier instead of silently blessing an apples-to-oranges
		// baseline.
		if snap.Scale != bench.Scale() {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %s was taken at scale %g but the current scale is %g; re-run with -scale %g to compare like for like\n",
				*checkPath, snap.Scale, bench.Scale(), snap.Scale)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-snapshot: %s ok (%s, %d kernels, scale %g, suite %.1fs)\n",
			*checkPath, snap.GoVersion, len(snap.Kernels), snap.Scale, snap.SuiteWallSeconds)
		return 0
	}
	snap := bench.TakeSnapshot()
	if *suite {
		start := time.Now()
		for _, e := range experiments {
			if _, err := e.run(); err != nil {
				fmt.Fprintf(os.Stderr, "bench-snapshot: suite %s: %v\n", e.name, err)
				return 1
			}
		}
		snap.SuiteWallSeconds = time.Since(start).Seconds()
	}
	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := snap.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
		return 1
	}
	if *historyPath != "" {
		f, err := os.OpenFile(*historyPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		err = snap.AppendHistory(f, time.Now().Format("2006-01-02"))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: history: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-snapshot: appended trajectory entry to %s\n", *historyPath)
	}
	return 0
}

// runWatch executes the watch subcommand: launch one report workload
// in the background and tail it live — periodic health frames built
// from the event stream and a mid-run registry snapshot — then print
// the final telemetry product and optionally write its JSONL event log
// and an OpenMetrics snapshot.
func runWatch(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	interval := fs.Duration("interval", 500*time.Millisecond, "wall-clock refresh interval between live frames")
	window := fs.Float64("window", 10, "tumbling-window width in simulated seconds")
	outPath := fs.String("out", "", "write the final JSONL telemetry event log to this file")
	omPath := fs.String("openmetrics", "", "write a final OpenMetrics snapshot to this file")
	fs.Parse(args)
	names := fs.Args()
	if len(names) == 0 {
		names = bench.ReportWorkloads()
	}
	if len(names) > 1 && (*outPath != "" || *omPath != "") {
		fmt.Fprintln(os.Stderr, "watch: -out/-openmetrics need exactly one workload")
		return 2
	}
	for _, name := range names {
		if code := watchOne(name, *interval, simtime.Duration(*window), *outPath, *omPath); code != 0 {
			return code
		}
	}
	return 0
}

// lastSeries returns the final sample value of the first named series
// present in the snapshot.
func lastSeries(snap metrics.Snapshot, ids ...string) (float64, bool) {
	for _, id := range ids {
		if m, ok := snap.Get(id); ok && len(m.Samples) > 0 {
			return m.Samples[len(m.Samples)-1].Value, true
		}
	}
	return 0, false
}

func watchOne(name string, interval time.Duration, window simtime.Duration, outPath, omPath string) int {
	live, err := bench.StartReport(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "watch %s: %v\n", name, err)
		return 1
	}
	start := time.Now()
	opts := obs.Options{Window: window}
	var events []trace.Event
	lastPhase := "starting"
	drain := func() {
		for {
			select {
			case e, ok := <-live.Events:
				if !ok {
					return
				}
				events = append(events, e)
				if e.Kind == trace.KindPhase {
					lastPhase = e.Name
				}
			default:
				return
			}
		}
	}
	frame := func() {
		drain()
		snap := live.Registry.Snapshot()
		p := obs.CollectEvents(name, events, snap, opts)
		jobs := 0.0
		if m, ok := snap.Get("mapred.jobs"); ok {
			jobs = m.Value
		}
		conv := "delta=-"
		if v, ok := lastSeries(snap, "core.be_delta", "core.residual{phase=top-off}", "core.residual{phase=ic}"); ok {
			conv = fmt.Sprintf("delta=%.6g", v)
		}
		fmt.Printf("watch %s +%5.1fs  sim=%9.2fs  phase=%-12s spans=%-6d jobs=%-5.0f %s  anomalies=%d\n",
			name, time.Since(start).Seconds(), float64(p.End), lastPhase, len(p.Events), jobs, conv, len(p.Anomalies))
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	running := true
	for running {
		select {
		case <-live.Done():
			running = false
		case <-ticker.C:
			frame()
		}
	}
	rep, err := live.Wait()
	if err != nil {
		fmt.Fprintf(os.Stderr, "watch %s: %v\n", name, err)
		return 1
	}
	// The final product derives from the finished tracer and registry —
	// deterministic regardless of how the live tail interleaved.
	finalOpts := rep.ObsOpts
	finalOpts.Window = window
	p := obs.Collect(rep.Name, rep.Trace, rep.Registry, finalOpts)
	fmt.Println(p.Render())
	fmt.Println(p.Flight.Render())
	fmt.Printf("[watch %s completed in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
	if outPath != "" {
		if err := writeFileWith(outPath, p.WriteJSONL); err != nil {
			fmt.Fprintf(os.Stderr, "watch %s: write event log: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "watch %s: wrote %s\n", name, outPath)
	}
	if omPath != "" {
		if err := writeFileWith(omPath, p.WriteOpenMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "watch %s: write openmetrics: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "watch %s: wrote %s\n", name, omPath)
	}
	return 0
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(w io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runReport executes the report subcommand: one instrumented PIC run
// per named workload (all of them when none are named), printing the
// inspector report and, with -out, writing <name>-trace.json and
// <name>-convergence.csv into the directory.
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	outDir := fs.String("out", "", "directory for <name>-trace.json and <name>-convergence.csv artifacts")
	fs.Parse(args)
	names := fs.Args()
	if len(names) == 0 {
		names = bench.ReportWorkloads()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
	}
	for _, name := range names {
		start := time.Now()
		rep, err := bench.RunReport(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report %s: %v\n", name, err)
			return 1
		}
		fmt.Println(rep.Render())
		fmt.Printf("[report %s completed in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
		if *outDir == "" {
			continue
		}
		tracePath := filepath.Join(*outDir, name+"-trace.json")
		f, err := os.Create(tracePath)
		if err == nil {
			err = rep.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write trace: %v\n", name, err)
			return 1
		}
		csvPath := filepath.Join(*outDir, name+"-convergence.csv")
		if err := os.WriteFile(csvPath, []byte(rep.ConvergenceCSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write csv: %v\n", name, err)
			return 1
		}
		logPath := filepath.Join(*outDir, name+"-events.jsonl")
		if err := writeFileWith(logPath, rep.WriteEventLog); err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write event log: %v\n", name, err)
			return 1
		}
		omPath := filepath.Join(*outDir, name+"-metrics.om")
		if err := writeFileWith(omPath, rep.WriteOpenMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write openmetrics: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "report %s: wrote %s, %s, %s and %s\n", name, tracePath, csvPath, logPath, omPath)
	}
	return 0
}

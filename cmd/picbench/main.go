// Command picbench regenerates the tables and figures of the PIC paper's
// evaluation. Run with no arguments for everything, or name experiments:
//
//	picbench fig2 fig9 fig10 fig11 fig12a fig12b fig12c \
//	         table1 table2 table3 \
//	         abl-parts abl-coupling abl-localfactor abl-degenerate \
//	         abl-faults abl-netfaults abl-tenancy abl-loopaware
//
// Two fault ablations exist: abl-faults crashes a node (machine and
// disk die; DFS re-replicates, tasks reschedule, PIC groups repair),
// while abl-netfaults leaves every node alive and severs the network
// between them (periodic core outages; transfers retry, IC blocks,
// PIC merges on a quorum). Run `picbench -list` for one-line
// descriptions of every experiment.
//
// The report subcommand runs one fully-instrumented PIC execution and
// emits its run-inspector artifacts (Chrome trace JSON and a
// convergence-curve CSV alongside the text report):
//
//	picbench [-scale S] report [-out DIR] [workload ...]
//
// The bench-snapshot subcommand measures the hot-path microbenchmark
// kernels and emits a machine-readable performance snapshot (see
// BENCH_baseline.json); -check validates an existing snapshot instead:
//
//	picbench [-scale S] bench-snapshot [-out FILE] [-suite]
//	picbench bench-snapshot -check BENCH_baseline.json
//
// Independent experiment cells (figure rows, sweep points) can run
// concurrently with -parallel N; outputs are byte-identical at any
// setting because all clocks and counters are simulated per cell.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"repro/internal/bench"
)

type renderer interface{ Render() string }

type experiment struct {
	name string
	desc string
	run  func() (renderer, error)
}

func wrap[T renderer](fn func() (T, error)) func() (renderer, error) {
	return func() (renderer, error) { return fn() }
}

var experiments = []experiment{
	{"fig2", "IC vs PIC wall time per application", wrap(bench.Fig2)},
	{"fig9", "convergence trajectory over time", wrap(bench.Fig9)},
	{"fig10", "BE/top-off phase breakdown", wrap(bench.Fig10)},
	{"fig11", "speedup vs cluster size", wrap(bench.Fig11)},
	{"fig12a", "K-means sensitivity sweep", wrap(bench.Fig12a)},
	{"fig12b", "PageRank sensitivity sweep", wrap(bench.Fig12b)},
	{"fig12c", "matrix-factorization sensitivity sweep", wrap(bench.Fig12c)},
	{"table1", "workload and cluster inventory", wrap(bench.Table1)},
	{"table2", "end-to-end results table", wrap(bench.Table2)},
	{"table3", "network traffic accounting", wrap(bench.Table3)},
	{"abl-parts", "partition-count sweep", wrap(bench.AblationPartitionCount)},
	{"abl-coupling", "graph coupling strength sweep", wrap(bench.AblationGraphCoupling)},
	{"abl-partitioner", "partitioner quality comparison", wrap(bench.AblationPartitioner)},
	{"abl-localfactor", "local-iteration budget sweep", wrap(bench.AblationLocalFactor)},
	{"abl-network", "network cost-model comparison", wrap(bench.AblationNetworkModel)},
	{"abl-async", "synchronous vs asynchronous merge", wrap(bench.AblationAsync)},
	{"abl-seeding", "BE-phase seeding quality", wrap(bench.AblationSeeding)},
	{"abl-rate", "convergence-rate comparison", wrap(bench.AblationConvergenceRate)},
	{"abl-degenerate", "pathological partitioning stress", wrap(bench.AblationDegenerate)},
	{"abl-faults", "node-failure ablation: a machine crashes (disk dies, DFS re-replicates, groups repair)", wrap(bench.AblationNodeFailure)},
	{"abl-netfaults", "network-fault ablation: nodes stay up but core links fail (retries, quorum merges)", wrap(bench.AblationNetworkFault)},
	{"abl-tenancy", "multi-tenant contention ablation", wrap(bench.AblationMultiTenant)},
	{"abl-loopaware", "loop-aware runtime ablation: cold vs warm invariant-input cache (wall time drops, simulated results byte-identical)", wrap(bench.AblationLoopAware)},
}

func main() {
	// The suite is allocation-heavy (every map output is materialized) and
	// latency-bound on real compute, so trade heap headroom for fewer GC
	// cycles. An explicit GOGC in the environment wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}
	jsonOut := flag.Bool("json", false, "emit results as JSON instead of rendered tables")
	scaleArg := flag.Float64("scale", 1.0, "dataset-size multiplier in (0,1] for quick smoke runs")
	parallel := flag.Int("parallel", 1, "experiment cells run concurrently (outputs are identical at any setting)")
	list := flag.Bool("list", false, "list experiments and report workloads, then exit")
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-16s %s\n", e.name, e.desc)
		}
		for _, w := range bench.ReportWorkloads() {
			fmt.Printf("report %s\n", w)
		}
		return
	}
	if *scaleArg != 1.0 {
		bench.SetScale(*scaleArg)
		fmt.Fprintf(os.Stderr, "note: running at scale %.2f — numbers will not match EXPERIMENTS.md\n", *scaleArg)
	}
	bench.SetParallelism(*parallel)
	if args := flag.Args(); len(args) > 0 && args[0] == "report" {
		os.Exit(runReport(args[1:]))
	}
	if args := flag.Args(); len(args) > 0 && args[0] == "bench-snapshot" {
		os.Exit(runSnapshot(args[1:]))
	}
	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[arg] = true
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.name] = true
	}
	for name := range selected {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\navailable:", name)
			for _, e := range experiments {
				fmt.Fprintf(os.Stderr, " %s", e.name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	failed := false
	ran := 0
	var suiteSeconds float64
	for _, e := range experiments {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		start := time.Now()
		result, err := e.run()
		wall := time.Since(start).Seconds()
		ran++
		suiteSeconds += wall
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			failed = true
			continue
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			payload := map[string]any{
				"experiment":   e.name,
				"wall_seconds": wall,
				"result":       result,
			}
			if err := enc.Encode(payload); err != nil {
				fmt.Fprintf(os.Stderr, "%s: encode: %v\n", e.name, err)
				failed = true
			}
			continue
		}
		fmt.Println(result.Render())
		fmt.Printf("[%s completed in %.1fs wall time]\n\n", e.name, wall)
	}
	if ran > 0 {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]any{"suite_wall_seconds": suiteSeconds, "experiments": ran})
		} else {
			fmt.Printf("[suite completed in %.1fs wall time: %d experiments]\n", suiteSeconds, ran)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runSnapshot executes the bench-snapshot subcommand: measure the
// hot-path microbenchmark kernels and emit (or, with -check, validate)
// the machine-readable performance snapshot.
func runSnapshot(args []string) int {
	fs := flag.NewFlagSet("bench-snapshot", flag.ExitOnError)
	outPath := fs.String("out", "", "write the snapshot JSON to this file (default stdout)")
	checkPath := fs.String("check", "", "validate an existing snapshot file instead of measuring")
	suite := fs.Bool("suite", false, "also run the full experiment suite once and record its wall time")
	fs.Parse(args)
	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		snap, err := bench.CheckSnapshot(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench-snapshot: %s ok (%s, %d kernels, scale %g, suite %.1fs)\n",
			*checkPath, snap.GoVersion, len(snap.Kernels), snap.Scale, snap.SuiteWallSeconds)
		return 0
	}
	snap := bench.TakeSnapshot()
	if *suite {
		start := time.Now()
		for _, e := range experiments {
			if _, err := e.run(); err != nil {
				fmt.Fprintf(os.Stderr, "bench-snapshot: suite %s: %v\n", e.name, err)
				return 1
			}
		}
		snap.SuiteWallSeconds = time.Since(start).Seconds()
	}
	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := snap.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "bench-snapshot: %v\n", err)
		return 1
	}
	return 0
}

// runReport executes the report subcommand: one instrumented PIC run
// per named workload (all of them when none are named), printing the
// inspector report and, with -out, writing <name>-trace.json and
// <name>-convergence.csv into the directory.
func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	outDir := fs.String("out", "", "directory for <name>-trace.json and <name>-convergence.csv artifacts")
	fs.Parse(args)
	names := fs.Args()
	if len(names) == 0 {
		names = bench.ReportWorkloads()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 1
		}
	}
	for _, name := range names {
		start := time.Now()
		rep, err := bench.RunReport(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report %s: %v\n", name, err)
			return 1
		}
		fmt.Println(rep.Render())
		fmt.Printf("[report %s completed in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
		if *outDir == "" {
			continue
		}
		tracePath := filepath.Join(*outDir, name+"-trace.json")
		f, err := os.Create(tracePath)
		if err == nil {
			err = rep.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write trace: %v\n", name, err)
			return 1
		}
		csvPath := filepath.Join(*outDir, name+"-convergence.csv")
		if err := os.WriteFile(csvPath, []byte(rep.ConvergenceCSV()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report %s: write csv: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "report %s: wrote %s and %s\n", name, tracePath, csvPath)
	}
	return 0
}

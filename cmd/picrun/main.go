// Command picrun executes one of the five case-study applications under
// the conventional (IC) scheme, under PIC, or both, on a chosen
// simulated testbed, and prints times, iteration counts and traffic.
//
//	picrun -app kmeans -cluster small -scheme both -partitions 6
//	picrun -app pagerank -cluster medium -scheme pic
//
// Applications: kmeans, pagerank, neuralnet, linsolve, smoothing.
// Clusters: small (6 nodes), medium (64), large (256).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/simcluster"
	"repro/internal/trace"
)

func main() {
	var (
		appName    = flag.String("app", "kmeans", "application: kmeans|pagerank|neuralnet|linsolve|smoothing")
		clusterArg = flag.String("cluster", "small", "testbed: small|medium|large")
		scheme     = flag.String("scheme", "both", "execution scheme: ic|pic|async|both")
		partitions = flag.Int("partitions", 6, "PIC sub-problem count")
		seed       = flag.Int64("seed", 1, "dataset seed")
		showTrace  = flag.Bool("trace", false, "print the execution timeline (Gantt + events)")
	)
	flag.Parse()

	var cluster simcluster.Config
	switch *clusterArg {
	case "small":
		cluster = simcluster.Small()
	case "medium":
		cluster = simcluster.Medium()
	case "large":
		cluster = simcluster.Large(256)
	default:
		fmt.Fprintf(os.Stderr, "unknown cluster %q\n", *clusterArg)
		os.Exit(2)
	}

	var w *bench.Workload
	switch *appName {
	case "kmeans":
		w, _ = bench.KMeansWorkload("kmeans", cluster, 300_000, 25, 3, *partitions, *seed)
	case "pagerank":
		w, _ = bench.PageRankWorkload("pagerank", cluster, 20_000, *partitions, 0.05, *seed)
	case "neuralnet":
		w, _, _, _ = bench.NeuralNetWorkload("neuralnet", cluster, 8_000, *partitions, *seed)
	case "linsolve":
		w, _ = bench.LinSolveWorkload("linsolve", cluster, 100, *partitions, *seed)
	case "smoothing":
		w, _ = bench.SmoothingWorkload("smoothing", cluster, 1024, 512, *partitions, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *appName)
		os.Exit(2)
	}
	w.PICOpts.Partitions = *partitions
	var tracer *trace.Tracer
	if *showTrace {
		tracer = trace.New()
		w.Tracer = tracer
	}

	if *scheme == "ic" || *scheme == "both" {
		ic, err := w.RunIC(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("IC : %3d iterations   %8.1f simulated s   %10s network   %8s model updates\n",
			ic.Iterations, float64(ic.Duration),
			bench.FormatBytes(ic.Metrics.ShuffleNetworkBytes+ic.Metrics.ModelBytes),
			bench.FormatBytes(ic.ModelUpdateBytes))
	}
	if *scheme == "pic" || *scheme == "both" {
		pic, err := w.RunPIC(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PIC: %3d BE + %2d top-off %6.1f simulated s   %10s network   %8s model updates\n",
			pic.BEIterations, pic.TopOffIterations, float64(pic.Duration),
			bench.FormatBytes(pic.Metrics.ShuffleNetworkBytes+pic.Metrics.ModelBytes+pic.MergeTrafficBytes),
			bench.FormatBytes(pic.ModelUpdateBytes))
		fmt.Printf("     local iterations per best-effort iteration: %v\n", pic.MaxLocalIterationsPerBE())
	}
	if *scheme == "async" {
		rt := w.NewRuntime()
		res, err := core.RunPICAsync(rt, w.MakeApp(), w.MakeInput(rt.Cluster()), w.MakeModel(),
			core.AsyncOptions{Partitions: *partitions})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ASY: rounds/group %v + %2d top-off %6.1f simulated s\n",
			res.RoundsPerGroup, res.TopOffIterations, float64(res.Duration))
	}
	if *scheme != "ic" && *scheme != "pic" && *scheme != "async" && *scheme != "both" {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	if tracer != nil {
		fmt.Println()
		fmt.Print(tracer.Gantt(72))
	}
}
